package permutation

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchSeq(n int) []int64 {
	rng := rand.New(rand.NewSource(int64(n)))
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(rng.Intn(n / 2)) // plenty of ties
	}
	return xs
}

func BenchmarkCountInversions(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		xs := benchSeq(n)
		b.Run(fmt.Sprintf("fenwick/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				CountInversions(xs)
			}
		})
		b.Run(fmt.Sprintf("merge/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				CountInversionsMerge(xs)
			}
		})
	}
	xs := benchSeq(1000)
	b.Run("naive/n=1000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			CountInversionsNaive(xs)
		}
	})
}

func BenchmarkMallows(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		Mallows(rng, 1000, 0.5)
	}
}
