// Package permutation provides the permutation substrate used throughout the
// library: validation, inversion, composition, enumeration, O(n log n)
// inversion counting (both Fenwick-tree and mergesort implementations), and
// samplers (uniform Fisher-Yates and the Mallows repeated-insertion model)
// for generating full-ranking workloads.
package permutation

import (
	"cmp"
	"fmt"
	"math"
	"math/rand"
)

// IsPermutation reports whether p is a permutation of {0, ..., len(p)-1}.
func IsPermutation(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Validate returns a descriptive error if p is not a permutation of
// {0, ..., len(p)-1}.
func Validate(p []int) error {
	seen := make([]bool, len(p))
	for i, v := range p {
		if v < 0 || v >= len(p) {
			return fmt.Errorf("permutation: entry %d=%d out of range [0,%d)", i, v, len(p))
		}
		if seen[v] {
			return fmt.Errorf("permutation: value %d repeated", v)
		}
		seen[v] = true
	}
	return nil
}

// Identity returns the identity permutation of size n.
func Identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Inverse returns q with q[p[i]] = i. It panics if p is not a permutation.
func Inverse(p []int) []int {
	q := make([]int, len(p))
	for i := range q {
		q[i] = -1
	}
	for i, v := range p {
		if v < 0 || v >= len(p) || q[v] != -1 {
			panic("permutation: Inverse of non-permutation")
		}
		q[v] = i
	}
	return q
}

// Compose returns the permutation r with r[i] = p[q[i]] ("apply q, then p").
func Compose(p, q []int) []int {
	if len(p) != len(q) {
		panic("permutation: Compose length mismatch")
	}
	r := make([]int, len(p))
	for i := range r {
		r[i] = p[q[i]]
	}
	return r
}

// ForEach enumerates all permutations of {0..n-1}, invoking fn for each. The
// slice passed to fn is reused and must not be retained. If fn returns false,
// enumeration stops early. ForEach visits n! arrangements, so it is only
// feasible for small n; it is the brute-force reference for aggregation
// optima.
func ForEach(n int, fn func(p []int) bool) {
	p := Identity(n)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k <= 1 {
			return fn(p)
		}
		for i := 0; i < k; i++ {
			if !rec(k - 1) {
				return false
			}
			if i < k-1 {
				if k%2 == 0 {
					p[i], p[k-1] = p[k-1], p[i]
				} else {
					p[0], p[k-1] = p[k-1], p[0]
				}
			}
		}
		return true
	}
	if n == 0 {
		fn(p)
		return
	}
	rec(n)
}

// Factorial returns n! and whether it fits in an int64.
func Factorial(n int) (int64, bool) {
	f := int64(1)
	for k := int64(2); k <= int64(n); k++ {
		if f > (1<<62)/k {
			return 0, false
		}
		f *= k
	}
	return f, true
}

// Mallows draws a permutation from the Mallows model with dispersion
// parameter theta >= 0 around the identity, using the repeated-insertion
// model: item i (0-based) is inserted at position j <= i with probability
// proportional to q^(i-j), q = exp(-theta). theta = 0 yields the uniform
// distribution; large theta concentrates near the identity. The expected
// Kendall distance from the identity decreases in theta.
func Mallows(rng *rand.Rand, n int, theta float64) []int {
	if theta < 0 {
		panic("permutation: Mallows requires theta >= 0")
	}
	q := math.Exp(-theta)
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		// Choose insertion offset d = i - j in {0..i} with weight q^d.
		var d int
		if q == 1 {
			d = rng.Intn(i + 1)
		} else {
			// Invert the truncated-geometric CDF
			// P(d <= x) = (1-q^{x+1}) / (1-q^{i+1}).
			u := rng.Float64() * (1 - math.Pow(q, float64(i+1)))
			d = int(math.Ceil(math.Log1p(-u)/math.Log(q))) - 1
			// Guard against floating-point edge cases.
			if d < 0 {
				d = 0
			}
			if d > i {
				d = i
			}
		}
		j := i - d
		out = append(out, 0)
		copy(out[j+1:], out[j:])
		out[j] = i
	}
	return out
}

// CountInversions returns the number of pairs i < j with xs[i] > xs[j]
// (strict), in O(n log n) time using a Fenwick tree over rank-compressed
// values. Equal values never count as inversions, which is exactly the
// semantics needed for tie-aware Kendall computations.
func CountInversions[T cmp.Ordered](xs []T) int64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	ranks := compressRanks(xs)
	ft := NewFenwick(n)
	var inv int64
	for i := n - 1; i >= 0; i-- {
		// Count previously-seen (i.e. to the right) values strictly smaller.
		if ranks[i] > 0 {
			inv += ft.PrefixSum(ranks[i] - 1)
		}
		ft.Add(ranks[i], 1)
	}
	return inv
}

// CountInversionsMerge is the mergesort-based inversion counter with the
// same semantics as CountInversions. Both are kept so each can validate the
// other; benchmarks compare them.
func CountInversionsMerge[T cmp.Ordered](xs []T) int64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	buf := make([]T, n)
	work := append([]T(nil), xs...)
	return mergeCount(work, buf)
}

func mergeCount[T cmp.Ordered](xs, buf []T) int64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := mergeCount(xs[:mid], buf[:mid]) + mergeCount(xs[mid:], buf[mid:])
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if xs[j] < xs[i] { // strict: equal values are not inverted
			inv += int64(mid - i)
			buf[k] = xs[j]
			j++
		} else {
			buf[k] = xs[i]
			i++
		}
		k++
	}
	copy(buf[k:], xs[i:mid])
	copy(buf[k+mid-i:], xs[j:])
	copy(xs, buf[:n])
	return inv
}

// CountInversionsNaive is the O(n^2) reference counter.
func CountInversionsNaive[T cmp.Ordered](xs []T) int64 {
	var inv int64
	for i := 0; i < len(xs); i++ {
		for j := i + 1; j < len(xs); j++ {
			if xs[i] > xs[j] {
				inv++
			}
		}
	}
	return inv
}

// compressRanks maps xs onto dense ranks 0..k-1 preserving order, with equal
// values sharing a rank.
func compressRanks[T cmp.Ordered](xs []T) []int {
	sorted := append([]T(nil), xs...)
	sortOrdered(sorted)
	uniq := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	ranks := make([]int, len(xs))
	for i, v := range xs {
		ranks[i] = lowerBound(uniq, v)
	}
	return ranks
}

func sortOrdered[T cmp.Ordered](xs []T) {
	// Insertion sort below a threshold, quicksort above; avoids pulling in
	// reflection-based sort for generic slices on older toolchains.
	var qs func(lo, hi int)
	qs = func(lo, hi int) {
		for hi-lo > 12 {
			p := xs[(lo+hi)/2]
			i, j := lo, hi-1
			for i <= j {
				for xs[i] < p {
					i++
				}
				for xs[j] > p {
					j--
				}
				if i <= j {
					xs[i], xs[j] = xs[j], xs[i]
					i++
					j--
				}
			}
			if j-lo < hi-i {
				qs(lo, j+1)
				lo = i
			} else {
				qs(i, hi)
				hi = j + 1
			}
		}
		for i := lo + 1; i < hi; i++ {
			for j := i; j > lo && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
	}
	qs(0, len(xs))
}

func lowerBound[T cmp.Ordered](sorted []T, v T) int {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Fenwick is a binary indexed tree over int64 counts, indexed 0..n-1.
type Fenwick struct {
	tree []int64
}

// NewFenwick returns a Fenwick tree of size n with all counts zero.
func NewFenwick(n int) *Fenwick {
	return &Fenwick{tree: make([]int64, n+1)}
}

// Reset re-dimensions the tree to size n and zeroes every count, reusing the
// underlying storage whenever it is large enough. It lets scratch state (for
// example a metrics workspace) run many counting passes without allocating.
func (f *Fenwick) Reset(n int) {
	if cap(f.tree) < n+1 {
		f.tree = make([]int64, n+1)
		return
	}
	f.tree = f.tree[:n+1]
	clear(f.tree)
}

// Size returns the index capacity the tree was last dimensioned for.
func (f *Fenwick) Size() int { return len(f.tree) - 1 }

// Add adds delta at index i.
func (f *Fenwick) Add(i int, delta int64) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// PrefixSum returns the sum of counts at indices 0..i inclusive.
func (f *Fenwick) PrefixSum(i int) int64 {
	var s int64
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// RangeSum returns the sum of counts at indices lo..hi inclusive.
func (f *Fenwick) RangeSum(lo, hi int) int64 {
	if hi < lo {
		return 0
	}
	s := f.PrefixSum(hi)
	if lo > 0 {
		s -= f.PrefixSum(lo - 1)
	}
	return s
}
