package cache

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/ranking"
)

func fp(hi, lo uint64) ranking.Fingerprint { return ranking.Fingerprint{Hi: hi, Lo: lo} }

func TestPairKeyCanonicalizesOrder(t *testing.T) {
	a, b := fp(9, 1), fp(2, 7)
	if PairKey(3, a, b) != PairKey(3, b, a) {
		t.Error("pair orientation changed the key")
	}
	if PairKey(3, a, b) == PairKey(4, a, b) {
		t.Error("metric id ignored by the key")
	}
	k := PairKey(1, a, b)
	if !k.A.Less(k.B) && k.A != k.B {
		t.Errorf("key pair not canonically ordered: %+v", k)
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(64)
	k := PairKey(1, fp(1, 2), fp(3, 4))
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, 2.5)
	if v, ok := c.Get(k); !ok || v != 2.5 {
		t.Fatalf("Get = %v, %v after Put", v, ok)
	}
	// Refresh overwrites in place.
	c.Put(k, 3.5)
	if v, _ := c.Get(k); v != 3.5 {
		t.Fatalf("refreshed value = %v, want 3.5", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Inserts != 1 {
		t.Errorf("stats = %+v, want 2 hits, 1 miss, 1 insert", st)
	}
	if got := st.HitRate(); got < 0.66 || got > 0.67 {
		t.Errorf("hit rate = %v, want 2/3", got)
	}
}

// sameShardKeys returns count distinct keys that all land in one shard of c,
// so LRU ordering is observable regardless of shard count.
func sameShardKeys(c *Cache, count int) []Key {
	rng := rand.New(rand.NewSource(5))
	var keys []Key
	want := uint64(0)
	for len(keys) < count {
		k := PairKey(1, fp(rng.Uint64(), rng.Uint64()), fp(rng.Uint64(), rng.Uint64()))
		if len(keys) == 0 {
			want = k.hash() & c.mask
			keys = append(keys, k)
			continue
		}
		if k.hash()&c.mask == want {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(64) // minPerShard keeps every shard's capacity >= 8
	per := c.shards[0].cap
	if per < 2 {
		t.Fatalf("test needs per-shard capacity >= 2, got %d", per)
	}
	keys := sameShardKeys(c, per+1)
	for i, k := range keys[:per] {
		c.Put(k, float64(i))
	}
	// Touch keys[0] so keys[1] is now the least recently used.
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("warm entry missing")
	}
	c.Put(keys[per], 99) // must evict keys[1]
	if _, ok := c.Get(keys[1]); ok {
		t.Error("least recently used entry survived eviction")
	}
	if _, ok := c.Get(keys[0]); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, ok := c.Get(keys[per]); !ok {
		t.Error("newly inserted entry missing")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

func TestCapacityBound(t *testing.T) {
	c := New(32)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10_000; i++ {
		c.Put(PairKey(1, fp(rng.Uint64(), rng.Uint64()), fp(rng.Uint64(), rng.Uint64())), float64(i))
	}
	// Per-shard rounding can push the bound slightly above the request, but
	// never unboundedly.
	bound := 0
	for i := range c.shards {
		bound += c.shards[i].cap
	}
	if got := c.Len(); got > bound {
		t.Errorf("Len = %d exceeds shard capacity sum %d", got, bound)
	}
	if c.Stats().Evictions == 0 {
		t.Error("overfilled cache never evicted")
	}
}

func TestGetOrCompute(t *testing.T) {
	c := New(16)
	k := PairKey(2, fp(5, 6), fp(7, 8))
	calls := 0
	compute := func() (float64, error) { calls++; return 42, nil }
	for i := 0; i < 3; i++ {
		v, err := c.GetOrCompute(k, compute)
		if err != nil || v != 42 {
			t.Fatalf("GetOrCompute = %v, %v", v, err)
		}
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	boom := errors.New("boom")
	_, err := c.GetOrCompute(PairKey(2, fp(9, 9), fp(9, 9)), func() (float64, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestTinyCapacities(t *testing.T) {
	for _, capacity := range []int{1, 2, 3} {
		c := New(capacity)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 100; i++ {
			k := PairKey(1, fp(rng.Uint64(), rng.Uint64()), fp(rng.Uint64(), rng.Uint64()))
			c.Put(k, float64(i))
			if v, ok := c.Get(k); !ok || v != float64(i) {
				t.Fatalf("capacity %d: just-inserted key missing", capacity)
			}
		}
	}
	if New(0) == nil || New(-5) == nil {
		t.Error("non-positive capacity not defaulted")
	}
}

// Concurrent probes and inserts on shared keys; run under -race in CI.
func TestCacheConcurrent(t *testing.T) {
	c := New(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2_000; i++ {
				k := PairKey(1, fp(rng.Uint64()%64, 1), fp(rng.Uint64()%64, 2))
				if v, ok := c.Get(k); ok && v != float64(k.A.Hi+k.B.Hi) {
					t.Errorf("corrupted value %v for %+v", v, k)
					return
				}
				c.Put(k, float64(k.A.Hi+k.B.Hi))
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits == 0 || st.Inserts == 0 {
		t.Errorf("concurrent run recorded no activity: %+v", st)
	}
}
