// Package cache is the pairwise-distance memoization layer of the
// reproduction: a sharded, lock-striped LRU of metric values keyed by
// (metric id, 128-bit ranking fingerprint pair). Real vote ensembles are
// duplicate-heavy — the same partial rankings recur across millions of
// users — so aggregation passes (distance matrices, best-of-inputs sweeps,
// candidate scoring) keep recomputing distances they have already paid for.
// The cache turns every repeat pair into one hash probe.
//
// Determinism: a distance function is pure, so serving a memoized value is
// bit-for-bit identical to recomputing it, provided fingerprint equality
// implies ranking equality. Fingerprints are 128 bits (see
// ranking.Fingerprint), so the expected number of colliding pairs over any
// realistic workload is negligible (~2^-128 per pair); the cached engines
// therefore produce exactly the results of their uncached counterparts.
//
// Concurrency: keys hash to one of a power-of-two number of shards, each an
// independently locked LRU, so GOMAXPROCS workers probing concurrently
// contend only when they collide on a shard. Hit, miss, eviction, and insert
// counts are kept per cache (always-on atomics, like the access accountant)
// and mirrored into telemetry-gated counters in the process registry.
package cache

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// Gated telemetry mirrors of the per-cache counters, shared by all caches in
// the process registry.
var (
	tHits      = telemetry.GetCounter("cache.distance.hits")
	tMisses    = telemetry.GetCounter("cache.distance.misses")
	tEvictions = telemetry.GetCounter("cache.distance.evictions")
	tInserts   = telemetry.GetCounter("cache.distance.inserts")
)

// Key identifies one cached pairwise metric value: which metric, and the
// fingerprints of the two rankings. For symmetric metrics build keys with
// PairKey, which canonicalizes the pair order so (a, b) and (b, a) share an
// entry.
type Key struct {
	Metric uint32
	A, B   ranking.Fingerprint
}

// PairKey builds the canonical key for a symmetric metric: the two
// fingerprints are stored in lexicographic order, so both orientations of a
// pair probe the same entry. Every paper metric is symmetric.
func PairKey(metric uint32, a, b ranking.Fingerprint) Key {
	if b.Less(a) {
		a, b = b, a
	}
	return Key{Metric: metric, A: a, B: b}
}

// hash folds a key into the shard index space. The fingerprints are already
// strong hashes, so combining the halves with distinct odd multipliers is
// enough to spread pairs across shards.
func (k Key) hash() uint64 {
	h := k.A.Hi ^ k.A.Lo*0x9e3779b97f4a7c15 ^ k.B.Hi*0xc2b2ae3d27d4eb4f ^ k.B.Lo*0xff51afd7ed558ccd
	return h ^ uint64(k.Metric)*0x2545f4914f6cdd1d
}

// entry is one shard-resident LRU node; prev/next form an intrusive
// recency list with the shard's sentinel as head (head.next = most recent).
type entry struct {
	key        Key
	val        float64
	prev, next *entry
}

// shard is one independently locked LRU segment.
type shard struct {
	mu   sync.Mutex
	m    map[Key]*entry
	head entry // sentinel of the recency ring
	cap  int
}

func (s *shard) init(capacity int) {
	s.m = make(map[Key]*entry, capacity)
	s.head.prev = &s.head
	s.head.next = &s.head
	s.cap = capacity
}

// unlink removes e from the recency ring.
func (e *entry) unlink() {
	e.prev.next = e.next
	e.next.prev = e.prev
}

// pushFront inserts e as the most recently used entry.
func (s *shard) pushFront(e *entry) {
	e.prev = &s.head
	e.next = s.head.next
	e.next.prev = e
	s.head.next = e
}

// Cache is a sharded LRU of pairwise metric values. The zero value is not
// usable; construct with New. All methods are safe for concurrent use.
type Cache struct {
	shards []shard
	mask   uint64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	inserts   atomic.Int64
}

// DefaultCapacity is the entry budget New applies when given a
// non-positive capacity: enough for the full upper triangle of a
// 1024-ranking ensemble (~8 MB of entries).
const DefaultCapacity = 1024 * 1023 / 2

// New returns a cache bounded to roughly capacity entries, split over a
// power-of-two number of shards. The shard count grows with the machine (up
// to 4*GOMAXPROCS, capped at 256) so concurrent workers rarely collide on a
// lock, but never so far that a shard would hold fewer than ~8 entries —
// tiny caches stay coherent LRUs instead of degenerating into single-entry
// slots. A non-positive capacity selects DefaultCapacity.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	const minPerShard = 8
	nShards := 1
	for nShards < 4*runtime.GOMAXPROCS(0) && nShards < 256 && nShards*2*minPerShard <= capacity {
		nShards <<= 1
	}
	c := &Cache{shards: make([]shard, nShards), mask: uint64(nShards - 1)}
	per := (capacity + nShards - 1) / nShards
	for i := range c.shards {
		c.shards[i].init(per)
	}
	return c
}

func (c *Cache) shardFor(k Key) *shard {
	return &c.shards[k.hash()&c.mask]
}

// Get returns the cached value for k, marking it most recently used.
func (c *Cache) Get(k Key) (float64, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.m[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		tMisses.Inc()
		return 0, false
	}
	if s.head.next != e {
		e.unlink()
		s.pushFront(e)
	}
	v := e.val
	s.mu.Unlock()
	c.hits.Add(1)
	tHits.Inc()
	return v, true
}

// Put inserts or refreshes k -> v, evicting the shard's least recently used
// entry when the shard is at capacity.
func (c *Cache) Put(k Key, v float64) {
	s := c.shardFor(k)
	s.mu.Lock()
	if e, ok := s.m[k]; ok {
		e.val = v
		if s.head.next != e {
			e.unlink()
			s.pushFront(e)
		}
		s.mu.Unlock()
		return
	}
	if len(s.m) >= s.cap {
		lru := s.head.prev
		lru.unlink()
		delete(s.m, lru.key)
		c.evictions.Add(1)
		tEvictions.Inc()
	}
	e := &entry{key: k, val: v}
	s.m[k] = e
	s.pushFront(e)
	s.mu.Unlock()
	c.inserts.Add(1)
	tInserts.Inc()
}

// GetOrCompute returns the cached value for k, or computes, caches, and
// returns it. The shard lock is not held across compute, so concurrent
// misses on one key may compute it more than once; the computes are pure, so
// the duplicates agree and the last insert wins.
func (c *Cache) GetOrCompute(k Key, compute func() (float64, error)) (float64, error) {
	if v, ok := c.Get(k); ok {
		return v, nil
	}
	v, err := compute()
	if err != nil {
		return 0, err
	}
	c.Put(k, v)
	return v, nil
}

// Len returns the live entry count across all shards.
func (c *Cache) Len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += len(s.m)
		s.mu.Unlock()
	}
	return total
}

// Stats is a point-in-time view of one cache's counters. Unlike the gated
// registry mirrors these are always counted, so hit rates are available
// whether or not telemetry is enabled.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Inserts   int64 `json:"inserts"`
}

// HitRate returns Hits / (Hits + Misses), or 0 before any probe.
func (st Stats) HitRate() float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

// Stats snapshots the cache's counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Inserts:   c.inserts.Load(),
	}
}
