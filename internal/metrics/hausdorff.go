package metrics

import (
	"repro/internal/ranking"
)

// KHaus returns the Hausdorff-Kendall distance between two partial rankings
// using the counting formula of Proposition 6:
//
//	KHaus(sigma, tau) = |U| + max{|S|, |T|},
//
// where U is the set of pairs in different buckets of both rankings and in
// different orders, S the pairs tied only in sigma, and T the pairs tied
// only in tau. Runs in O(n log n).
func KHaus(a, b *ranking.PartialRanking) (int64, error) {
	pc, err := CountPairs(a, b)
	if err != nil {
		return 0, err
	}
	return KHausFromCounts(pc), nil
}

// KHausFromCounts applies the Proposition 6 formula to a precomputed pair
// classification.
func KHausFromCounts(pc PairCounts) int64 {
	return pc.Discordant + max64(pc.TiedOnlyInA, pc.TiedOnlyInB)
}

// hausdorffWitnesses builds the two candidate full-ranking pairs of
// Theorem 5 with rho = identity:
//
//	sigma1 = rho*tauR*sigma   tau1 = rho*sigma*tau
//	sigma2 = rho*tau*sigma    tau2 = rho*sigmaR*tau
//
// One of the pairs exhibits the Hausdorff distance for both F and K.
func hausdorffWitnesses(a, b *ranking.PartialRanking) (s1, t1, s2, t2 *ranking.PartialRanking) {
	rho := identityRanking(a.N())
	aR := a.Reverse()
	bR := b.Reverse()
	s1 = a.RefineBy(bR).RefineBy(rho)
	t1 = b.RefineBy(a).RefineBy(rho)
	s2 = a.RefineBy(b).RefineBy(rho)
	t2 = b.RefineBy(aR).RefineBy(rho)
	return s1, t1, s2, t2
}

// KHausViaRefinement computes KHaus by the Theorem 5 refinement
// construction: max{K(sigma1, tau1), K(sigma2, tau2)}. It must always agree
// with KHaus (Proposition 6); both are exported so the tests and experiment
// E2 can pin them together.
func KHausViaRefinement(a, b *ranking.PartialRanking) (int64, error) {
	if err := ranking.CheckSameDomain(a, b); err != nil {
		return 0, err
	}
	s1, t1, s2, t2 := hausdorffWitnesses(a, b)
	k1, err := Kendall(s1, t1)
	if err != nil {
		return 0, err
	}
	k2, err := Kendall(s2, t2)
	if err != nil {
		return 0, err
	}
	return max64(k1, k2), nil
}

// FHaus returns the Hausdorff-footrule distance between two partial rankings
// via the Theorem 5 characterization: max{F(sigma1, tau1), F(sigma2, tau2)}
// over the two witness pairs. The result is an integer because F between
// full rankings is integral. Runs in O(n log n) with a pooled workspace; the
// witness rankings are never materialized (see (*Workspace).FHaus).
func FHaus(a, b *ranking.PartialRanking) (int64, error) {
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	return ws.FHaus(a, b)
}

// FHausViaRefinement computes FHaus by materializing the Theorem 5 witness
// refinements, exactly as the pre-workspace engine did. It must always agree
// with FHaus; the property tests and benchmark harness pin the two together.
func FHausViaRefinement(a, b *ranking.PartialRanking) (int64, error) {
	if err := ranking.CheckSameDomain(a, b); err != nil {
		return 0, err
	}
	s1, t1, s2, t2 := hausdorffWitnesses(a, b)
	f1, err := Footrule(s1, t1)
	if err != nil {
		return 0, err
	}
	f2, err := Footrule(s2, t2)
	if err != nil {
		return 0, err
	}
	return max64(f1, f2), nil
}

// Hausdorff returns the Hausdorff distance (Equation 2 of the paper) between
// two non-empty finite sets under an arbitrary distance function:
//
//	max{ max_{x in as} min_{y in bs} d(x,y), max_{y in bs} min_{x in as} d(x,y) }.
//
// It is the generic definition the paper instantiates with K and F over the
// sets of full refinements; the brute-force references use it directly.
func Hausdorff[T any](as, bs []T, d func(a, b T) float64) float64 {
	if len(as) == 0 || len(bs) == 0 {
		panic("metrics: Hausdorff of empty set")
	}
	worst := 0.0
	dir := func(xs, ys []T) {
		for _, x := range xs {
			best := -1.0
			for _, y := range ys {
				v := d(x, y)
				if best < 0 || v < best {
					best = v
				}
			}
			if best > worst {
				worst = best
			}
		}
	}
	dir(as, bs)
	dir(bs, as)
	return worst
}

// identityRanking returns the full ranking 0 < 1 < ... < n-1, used as the
// arbitrary tie-breaker rho of Theorem 5.
func identityRanking(n int) *ranking.PartialRanking {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return ranking.MustFromOrder(order)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
