package metrics

import (
	"fmt"

	"repro/internal/ranking"
)

// This file implements the "reflected duplicate" construction of Appendix
// A.5.2, the machinery behind the paper's hardest equivalence, Equation 5
// (Kprof <= Fprof <= 2 Kprof):
//
// Given a partial ranking sigma over D = {0..n-1}, adjoin a mirror element
// i# := i+n for every i and define sigma# over D ∪ D# by putting i and i#
// in a doubled copy of i's bucket: sigma#(i) = sigma#(i#) = 2 sigma(i) - 1/2.
// For a full ranking pi over D, the full ranking pi\ over D ∪ D# ranks D in
// pi's order followed by D# in reverse pi order, and
//
//	sigma_pi := pi\ * sigma#
//
// is a full ranking in which each bucket B of sigma appears as the pattern
// b1 b2 ... bk bk# ... b2# b1#, so (sigma_pi(d) + sigma_pi(d#))/2 recovers
// the bucket position exactly (Equation 7).
//
// Lemma 21: K(sigma_pi, tau_pi) = 4 Kprof(sigma, tau) for EVERY pi.
// Lemma 22: if no element is "nested" with respect to pi, then also
// F(sigma_pi, tau_pi) = 4 Fprof(sigma, tau).
// Lemma 23: a nest-free pi always exists; its proof is an algorithm
// (repeatedly swap the first nested element with a same-bucket partner),
// implemented here as NestFreeOrder.

// ReflectEmbed returns sigma# over the doubled domain {0..2n-1}: element i
// is mirrored by i+n, and each bucket B of sigma becomes the bucket
// B ∪ {b+n : b in B}.
func ReflectEmbed(sigma *ranking.PartialRanking) *ranking.PartialRanking {
	n := sigma.N()
	buckets := make([][]int, sigma.NumBuckets())
	for bi := 0; bi < sigma.NumBuckets(); bi++ {
		b := sigma.Bucket(bi)
		dup := make([]int, 0, 2*len(b))
		dup = append(dup, b...)
		for _, e := range b {
			dup = append(dup, e+n)
		}
		buckets[bi] = dup
	}
	return ranking.MustFromBuckets(2*n, buckets)
}

// reflectTieBreak returns pi\ over {0..2n-1}: the elements of D in pi's
// order, then the mirrors in reverse pi order.
func reflectTieBreak(pi *ranking.PartialRanking) *ranking.PartialRanking {
	if !pi.IsFull() {
		panic("metrics: reflection tie-break requires a full ranking")
	}
	n := pi.N()
	order := make([]int, 0, 2*n)
	po := pi.Order()
	order = append(order, po...)
	for i := n - 1; i >= 0; i-- {
		order = append(order, po[i]+n)
	}
	return ranking.MustFromOrder(order)
}

// ReflectOrder returns sigma_pi = pi\ * sigma#, the full ranking over the
// doubled domain induced by sigma and the tie-breaking order pi.
func ReflectOrder(sigma, pi *ranking.PartialRanking) *ranking.PartialRanking {
	if sigma.N() != pi.N() {
		panic("metrics: ReflectOrder domain mismatch")
	}
	return ReflectEmbed(sigma).RefineBy(reflectTieBreak(pi))
}

// interval returns the (doubled) positions of d and its mirror in a
// reflected order; the first is always the smaller.
func interval(refl *ranking.PartialRanking, d, n int) (lo, hi int64) {
	return refl.Pos2(d), refl.Pos2(d + n)
}

// strictlyInside reports [s,t] ⊏ [u,v]: containment with both endpoints
// strict, the nesting relation of Appendix A.5.2.
func strictlyInside(s, t, u, v int64) bool {
	return u < s && t < v
}

// Nested reports whether element d (of the original domain, with mirrors at
// +n) is nested with respect to the two reflected orders: one of its
// intervals sits strictly inside the other.
func Nested(sigmaPi, tauPi *ranking.PartialRanking, d, n int) bool {
	s1, t1 := interval(sigmaPi, d, n)
	s2, t2 := interval(tauPi, d, n)
	return strictlyInside(s1, t1, s2, t2) || strictlyInside(s2, t2, s1, t1)
}

// NestFreeOrder returns a full ranking pi over sigma's domain such that no
// element is nested with respect to pi — Lemma 23's constructive proof run
// as an algorithm: starting from the identity, repeatedly take the nested
// element a with minimal pi(a) ("the first nest") and swap it with a
// same-bucket partner b chosen so that the first nest strictly increases.
// The loop terminates after at most n swaps.
func NestFreeOrder(sigma, tau *ranking.PartialRanking) (*ranking.PartialRanking, error) {
	if err := ranking.CheckSameDomain(sigma, tau); err != nil {
		return nil, err
	}
	n := sigma.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for iter := 0; iter <= n+1; iter++ {
		pi := ranking.MustFromOrder(order)
		sigmaPi := ReflectOrder(sigma, pi)
		tauPi := ReflectOrder(tau, pi)

		// Find the first nest: the nested element with minimal pi(d).
		a := -1
		for _, d := range order {
			if Nested(sigmaPi, tauPi, d, n) {
				a = d
				break
			}
		}
		if a < 0 {
			return pi, nil
		}
		// WLOG the sigma-interval of a strictly contains its tau-interval;
		// otherwise swap the roles of sigma and tau (the construction is
		// symmetric).
		inner, outer := tauPi, sigmaPi
		s1, t1 := interval(sigmaPi, a, n)
		s2, t2 := interval(tauPi, a, n)
		if !strictlyInside(s2, t2, s1, t1) {
			inner, outer = sigmaPi, tauPi
		}
		oLo, oHi := interval(outer, a, n)
		// b ranges over elements whose outer interval sits strictly inside
		// a's (S1), excluding those whose *inner* interval also sits
		// strictly inside a's outer interval (S2). A counting argument in
		// the paper shows S1 \ S2 is non-empty.
		b := -1
		for d := 0; d < n; d++ {
			if d == a {
				continue
			}
			dLo, dHi := interval(outer, d, n)
			if !strictlyInside(dLo, dHi, oLo, oHi) {
				continue // not in S1
			}
			iLo, iHi := interval(inner, d, n)
			if strictlyInside(iLo, iHi, oLo, oHi) {
				continue // in S2
			}
			b = d
			break
		}
		if b < 0 {
			return nil, fmt.Errorf("metrics: NestFreeOrder found no swap partner (Lemma 23 violated?)")
		}
		// Swap a and b in pi.
		var ia, ib int
		for i, e := range order {
			if e == a {
				ia = i
			}
			if e == b {
				ib = i
			}
		}
		order[ia], order[ib] = order[ib], order[ia]
	}
	return nil, fmt.Errorf("metrics: NestFreeOrder did not converge in n+1 swaps")
}

// KProfViaReflection computes 4*Kprof(sigma, tau) as K(sigma_pi, tau_pi)
// with pi the identity (Lemma 21 holds for every pi); exported for the tests
// and experiment E11 that validate the reflection machinery.
func KProfViaReflection(sigma, tau *ranking.PartialRanking) (float64, error) {
	if err := ranking.CheckSameDomain(sigma, tau); err != nil {
		return 0, err
	}
	pi := identityRanking(sigma.N())
	k, err := Kendall(ReflectOrder(sigma, pi), ReflectOrder(tau, pi))
	if err != nil {
		return 0, err
	}
	return float64(k) / 4, nil
}

// FProfViaReflection computes Fprof(sigma, tau) as F(sigma_pi, tau_pi)/4
// with pi the nest-free order of Lemma 23 (Lemma 22 requires nest-freeness).
func FProfViaReflection(sigma, tau *ranking.PartialRanking) (float64, error) {
	pi, err := NestFreeOrder(sigma, tau)
	if err != nil {
		return 0, err
	}
	f, err := Footrule(ReflectOrder(sigma, pi), ReflectOrder(tau, pi))
	if err != nil {
		return 0, err
	}
	return float64(f) / 4, nil
}
