package metrics

import (
	"errors"

	"repro/internal/ranking"
)

// ErrGammaUndefined is returned by GoodmanKruskalGamma when every pair of
// elements is tied in at least one of the two rankings, so the measure has a
// zero denominator. The paper (Related work) cites exactly this partiality
// as the serious disadvantage of the Goodman-Kruskal approach compared to
// the four metrics it proposes.
var ErrGammaUndefined = errors.New("metrics: Goodman-Kruskal gamma undefined (no pair is untied in both rankings)")

// GoodmanKruskalGamma returns the Goodman-Kruskal gamma association between
// two partial rankings: (C - D) / (C + D) over the pairs untied in both
// rankings, where C counts concordant and D discordant pairs. The value lies
// in [-1, 1]; +1 means perfect agreement on comparable pairs. It returns
// ErrGammaUndefined when C + D = 0.
func GoodmanKruskalGamma(a, b *ranking.PartialRanking) (float64, error) {
	pc, err := CountPairs(a, b)
	if err != nil {
		return 0, err
	}
	den := pc.Concordant + pc.Discordant
	if den == 0 {
		return 0, ErrGammaUndefined
	}
	return float64(pc.Concordant-pc.Discordant) / float64(den), nil
}

// GammaDistance converts gamma into a normalized distance (1 - gamma)/2 in
// [0, 1]. It inherits ErrGammaUndefined; unlike the four paper metrics it is
// not a metric (it can be 0 for distinct rankings).
func GammaDistance(a, b *ranking.PartialRanking) (float64, error) {
	g, err := GoodmanKruskalGamma(a, b)
	if err != nil {
		return 0, err
	}
	return (1 - g) / 2, nil
}
