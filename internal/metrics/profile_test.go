package metrics

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

// Kprof is, by definition, the L1 distance between K-profiles (Section 3.1).
func TestKProfEqualsProfileL1(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(15)
		a := randrank.Partial(rng, n, 4)
		b := randrank.Partial(rng, n, 4)
		kp, err := KProf(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if want := L1(KProfile(a), KProfile(b)); kp != want {
			t.Fatalf("KProf = %v, profile L1 = %v for %v %v", kp, want, a, b)
		}
	}
}

// On full rankings, Kprof reduces to the Kendall distance and Fprof to the
// footrule distance.
func TestProfileMetricsReduceOnFullRankings(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(25)
		a := randrank.Full(rng, n)
		b := randrank.Full(rng, n)
		kp, _ := KProf(a, b)
		k, _ := Kendall(a, b)
		if kp != float64(k) {
			t.Fatalf("KProf=%v != Kendall=%d on full rankings", kp, k)
		}
		fp, _ := FProf(a, b)
		f, _ := Footrule(a, b)
		if fp != float64(f) {
			t.Fatalf("FProf=%v != Footrule=%d on full rankings", fp, f)
		}
	}
}

func TestKWithPenaltyCases(t *testing.T) {
	// The three-ranking example of Proposition 13's proof: domain {a, b}.
	t1 := ranking.MustFromOrder([]int{0, 1})          // a before b
	t2 := ranking.MustFromBuckets(2, [][]int{{0, 1}}) // tied
	t3 := ranking.MustFromOrder([]int{1, 0})          // b before a
	for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.75, 1} {
		d12, err := KWithPenalty(t1, t2, p)
		if err != nil {
			t.Fatal(err)
		}
		d23, _ := KWithPenalty(t2, t3, p)
		d13, _ := KWithPenalty(t1, t3, p)
		if d12 != p || d23 != p || d13 != 1 {
			t.Fatalf("p=%v: d12=%v d23=%v d13=%v, want p,p,1", p, d12, d23, d13)
		}
		// Triangle inequality holds iff 2p >= 1.
		holds := d13 <= d12+d23
		if holds != (p >= 0.5) {
			t.Errorf("p=%v: triangle holds=%v, want %v", p, holds, p >= 0.5)
		}
	}
	// K^(0) is not a distance measure: distance 0 between distinct rankings.
	d, _ := KWithPenalty(t1, t2, 0)
	if d != 0 {
		t.Errorf("K^(0)(t1,t2) = %v, want 0 (regularity failure)", d)
	}
}

func TestKWithPenaltyRange(t *testing.T) {
	a := ranking.MustFromOrder([]int{0, 1})
	if _, err := KWithPenalty(a, a, -0.1); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := KWithPenalty(a, a, 1.1); err == nil {
		t.Error("p > 1 accepted")
	}
}

// K^(p) and K^(p') are within factor p'/p of each other (Prop. 13's proof),
// so all K^(p) with p > 0 are in one equivalence class.
func TestKWithPenaltyEquivalenceScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := []float64{0.1, 0.25, 0.5, 0.9}
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(12)
		a := randrank.Partial(rng, n, 4)
		b := randrank.Partial(rng, n, 4)
		for _, p := range ps {
			for _, q := range ps {
				if p >= q {
					continue
				}
				dp, _ := KWithPenalty(a, b, p)
				dq, _ := KWithPenalty(a, b, q)
				if !(dp <= dq+1e-12 && dq <= (q/p)*dp+1e-9) {
					t.Fatalf("K^(p) scaling violated: p=%v q=%v dp=%v dq=%v", p, q, dp, dq)
				}
			}
		}
	}
}

// Kprof and Fprof are metrics (Section 3.1: they are L1 distances between
// profiles, hence automatically metrics): symmetry, regularity, triangle.
func TestProfileMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(8)
		a := randrank.Partial(rng, n, 4)
		b := randrank.Partial(rng, n, 4)
		c := randrank.Partial(rng, n, 4)

		kab, _ := KProf(a, b)
		kba, _ := KProf(b, a)
		kac, _ := KProf(a, c)
		kcb, _ := KProf(c, b)
		if kab != kba {
			t.Fatalf("Kprof not symmetric")
		}
		if (kab == 0) != a.Equal(b) {
			t.Fatalf("Kprof regularity violated: d=%v equal=%v\na=%v\nb=%v", kab, a.Equal(b), a, b)
		}
		if kab > kac+kcb+1e-12 {
			t.Fatalf("Kprof triangle violated: %v > %v + %v", kab, kac, kcb)
		}

		fab, _ := FProf(a, b)
		fba, _ := FProf(b, a)
		fac, _ := FProf(a, c)
		fcb, _ := FProf(c, b)
		if fab != fba || (fab == 0) != a.Equal(b) || fab > fac+fcb+1e-12 {
			t.Fatalf("Fprof axioms violated")
		}
	}
}

// Theorem 24 / Equation 5: Kprof <= Fprof <= 2*Kprof for all partial
// rankings. This is the hard Diaconis-Graham generalization of the paper;
// verified exhaustively for n <= 4 and randomly for larger n.
func TestEquation5KprofFprof(t *testing.T) {
	check := func(a, b *ranking.PartialRanking) {
		kp2, err := KProf2(a, b)
		if err != nil {
			t.Fatal(err)
		}
		fp2, err := FProf2(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !(kp2 <= fp2 && fp2 <= 2*kp2) {
			t.Fatalf("Eq. 5 violated: Kprof=%v Fprof=%v\na=%v\nb=%v",
				float64(kp2)/2, float64(fp2)/2, a, b)
		}
	}
	for n := 0; n <= 4; n++ {
		var all []*ranking.PartialRanking
		forEachPartialRanking(n, func(pr *ranking.PartialRanking) { all = append(all, pr) })
		for _, a := range all {
			for _, b := range all {
				check(a, b)
			}
		}
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(40)
		check(randrank.Partial(rng, n, 6), randrank.Partial(rng, n, 6))
	}
}

func TestKProf2ExactHalfIntegral(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(20)
		a := randrank.Partial(rng, n, 4)
		b := randrank.Partial(rng, n, 4)
		kp, _ := KProf(a, b)
		kp2, _ := KProf2(a, b)
		if kp != float64(kp2)/2 {
			t.Fatalf("KProf=%v inconsistent with KProf2=%d", kp, kp2)
		}
		if math.Mod(float64(kp2), 1) != 0 {
			t.Fatalf("KProf2 not integral")
		}
		fp, _ := FProf(a, b)
		fp2, _ := FProf2(a, b)
		if fp != float64(fp2)/2 {
			t.Fatalf("FProf=%v inconsistent with FProf2=%d", fp, fp2)
		}
	}
}

func TestKProfFromCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(15)
		a := randrank.Partial(rng, n, 4)
		b := randrank.Partial(rng, n, 4)
		pc, _ := CountPairs(a, b)
		kp, _ := KProf(a, b)
		if got := KProfFromCounts(pc); got != kp {
			t.Fatalf("KProfFromCounts = %v, KProf = %v", got, kp)
		}
	}
}

func TestProfileDomainMismatch(t *testing.T) {
	a := ranking.MustFromOrder([]int{0, 1})
	b := ranking.MustFromOrder([]int{0, 1, 2})
	if _, err := KProf(a, b); err == nil {
		t.Error("KProf domain mismatch accepted")
	}
	if _, err := FProf(a, b); err == nil {
		t.Error("FProf domain mismatch accepted")
	}
	if _, err := KWithPenalty(a, b, 0.5); err == nil {
		t.Error("KWithPenalty domain mismatch accepted")
	}
}
