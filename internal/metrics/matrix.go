package metrics

import (
	"runtime"
	"sync"

	"repro/internal/ranking"
)

// Distance is any distance function between partial rankings, as consumed
// by DistanceMatrix.
type Distance func(a, b *ranking.PartialRanking) (float64, error)

// DistanceMatrix computes the symmetric m x m matrix of pairwise distances
// among an ensemble, fanning the upper-triangle computations out across
// GOMAXPROCS goroutines. The diagonal is zero by regularity; the matrix is
// filled symmetrically. The first error encountered aborts the computation.
func DistanceMatrix(rankings []*ranking.PartialRanking, d Distance) ([][]float64, error) {
	m := len(rankings)
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, m)
	}
	type cell struct{ i, j int }
	jobs := make(chan cell, m)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				v, err := d(rankings[c.i], rankings[c.j])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				out[c.i][c.j] = v
				out[c.j][c.i] = v
			}
		}()
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			jobs <- cell{i, j}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// KendallW returns Kendall's coefficient of concordance W among m >= 2
// partial rankings over n >= 2 elements, with the standard tie correction:
//
//	W = (12 S) / (m^2 (n^3 - n) - m sum_i T_i),
//
// where S is the sum of squared deviations of the elements' total positions
// from their mean and T_i = sum over the buckets of ranking i of
// (|B|^3 - |B|). W = 1 means the rankings are identical bucket orders with
// no ties... more precisely complete concordance; W near 0 means no
// agreement. Returns ErrCorrelationUndefined when the denominator vanishes
// (e.g. every ranking is a single bucket).
func KendallW(rankings []*ranking.PartialRanking) (float64, error) {
	m := len(rankings)
	if m < 2 {
		return 0, ErrCorrelationUndefined
	}
	if err := ranking.CheckSameDomain(rankings...); err != nil {
		return 0, err
	}
	n := rankings[0].N()
	if n < 2 {
		return 0, ErrCorrelationUndefined
	}
	// Total (doubled) position per element and the tie correction.
	totals2 := make([]int64, n)
	var tieCorr float64
	for _, r := range rankings {
		for e := 0; e < n; e++ {
			totals2[e] += r.Pos2(e)
		}
		for b := 0; b < r.NumBuckets(); b++ {
			t := float64(r.BucketSize(b))
			tieCorr += t*t*t - t
		}
	}
	mean := float64(m) * float64(n+1) / 2 // mean total position
	var s float64
	for e := 0; e < n; e++ {
		d := float64(totals2[e])/2 - mean
		s += d * d
	}
	den := float64(m)*float64(m)*(float64(n)*float64(n)*float64(n)-float64(n)) -
		float64(m)*tieCorr
	if den <= 0 {
		return 0, ErrCorrelationUndefined
	}
	return 12 * s / den, nil
}
