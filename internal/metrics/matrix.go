package metrics

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/guard"
	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// Gated telemetry instruments of the batch sweep engine.
var (
	tMatrixCells         = telemetry.GetCounter("metrics.matrix.cells")
	tMatrixShortCircuits = telemetry.GetCounter("metrics.matrix.short_circuits")
	tMatrixSkipped       = telemetry.GetCounter("metrics.matrix.cells_skipped")
	tMatrixWorkerCells   = telemetry.GetHistogram("metrics.matrix.cells_per_worker")
)

// SweepError is the error of an aborted pairwise sweep: it carries the first
// distance error plus how many upper-triangle cells the short-circuit left
// uncomputed, so callers can tell a barely-started sweep from a nearly
// finished one instead of silently losing that accounting. The matrix
// returned alongside it holds every cell that did complete (still symmetric
// cell-by-cell); skipped and failed cells stay zero.
//
// Completed records exactly which upper-triangle cells finished (including
// cells carried over from an earlier interrupted sweep), indexed by
// PairIndex, so ResumeDistanceMatrix can finish the matrix incrementally. A
// panic inside the distance function surfaces here as Err wrapping a
// *guard.PanicError rather than crashing the process.
type SweepError struct {
	// Err is the first error returned by the distance function.
	Err error
	// SkippedCells counts the upper-triangle cells this sweep was asked to
	// compute but never did because of the short-circuit.
	SkippedCells int64
	// M is the ensemble size the sweep ran over; the triangle has
	// M*(M-1)/2 cells.
	M int
	// Completed marks every finished cell by PairIndex.
	Completed *guard.Bitmap
}

func (e *SweepError) Error() string {
	return fmt.Sprintf("%v (sweep aborted, %d cells skipped)", e.Err, e.SkippedCells)
}

// Unwrap exposes the first distance error to errors.Is/As.
func (e *SweepError) Unwrap() error { return e.Err }

// Distance is any distance function between partial rankings, as consumed
// by DistanceMatrix.
type Distance func(a, b *ranking.PartialRanking) (float64, error)

// DistanceWS is a workspace-aware distance function: the caller supplies the
// scratch state, so batch engines hand each worker goroutine one warm
// workspace and pay O(1) allocations per distance. Method expressions on
// Workspace — (*Workspace).KProf, (*Workspace).FProf, (*Workspace).Distances
// adapters below — satisfy this type directly.
type DistanceWS func(ws *Workspace, a, b *ranking.PartialRanking) (float64, error)

// Workspace-aware adapters for the four paper metrics, usable wherever a
// DistanceWS is consumed (DistanceMatrixWith, SumDistanceWith, ...). The
// Hausdorff pair return float64 for signature uniformity; the values are
// exact integers.
func KProfWS(ws *Workspace, a, b *ranking.PartialRanking) (float64, error) { return ws.KProf(a, b) }
func FProfWS(ws *Workspace, a, b *ranking.PartialRanking) (float64, error) { return ws.FProf(a, b) }
func KHausWS(ws *Workspace, a, b *ranking.PartialRanking) (float64, error) {
	v, err := ws.KHaus(a, b)
	return float64(v), err
}
func FHausWS(ws *Workspace, a, b *ranking.PartialRanking) (float64, error) {
	v, err := ws.FHaus(a, b)
	return float64(v), err
}

// DistanceMatrix computes the symmetric m x m matrix of pairwise distances
// among an ensemble, fanning the upper-triangle computations out across
// GOMAXPROCS goroutines. The diagonal is zero by regularity; the matrix is
// filled symmetrically. The first error encountered aborts the computation;
// the partially filled matrix is still returned alongside the *SweepError so
// degraded callers can use the completed cells. The distance function
// receives no workspace; use DistanceMatrixWith to reuse one workspace per
// worker.
func DistanceMatrix(rankings []*ranking.PartialRanking, d Distance) ([][]float64, error) {
	return DistanceMatrixWith(rankings, func(_ *Workspace, a, b *ranking.PartialRanking) (float64, error) {
		return d(a, b)
	})
}

// DistanceMatrixWith is DistanceMatrix for workspace-aware distances: every
// worker goroutine checks one workspace out of the package pool for its
// whole lifetime, so an m-ranking ensemble costs O(workers) allocations of
// scratch state rather than O(m^2). On the first error the producer stops
// enqueueing and the workers skip whatever is already queued, so the call
// returns without computing the remaining cells; the returned error is a
// *SweepError recording how many cells were skipped, and the returned matrix
// holds the cells that completed before the short-circuit (zero elsewhere).
func DistanceMatrixWith(rankings []*ranking.PartialRanking, d DistanceWS) ([][]float64, error) {
	m := len(rankings)
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, m)
	}
	err := forEachPair(m, "distance_matrix", func(ws *Workspace, i, j int) error {
		v, err := d(ws, rankings[i], rankings[j])
		if err != nil {
			return err
		}
		out[i][j] = v
		out[j][i] = v
		return nil
	})
	return out, err
}

// PairIndex maps an upper-triangle cell (i, j), i < j, of an m x m matrix to
// its linear index in row-major triangle order: (0,1), (0,2), ..., (1,2), ...
// SweepError.Completed is indexed by it.
func PairIndex(m, i, j int) int {
	return i*(2*m-i-1)/2 + (j - i - 1)
}

// ResumeDistanceMatrix finishes a distance matrix whose earlier sweep was
// aborted by an error or contained panic. prev and prevErr are the matrix and
// error of the interrupted DistanceMatrixWith (or a previous resume) over the
// same ensemble; only the cells the earlier sweep did not complete are
// recomputed, and the completed ones are copied through. If prevErr carries
// no usable completion state — it is not a *SweepError, or it was produced by
// a sweep over a different ensemble size — the whole matrix is recomputed
// from scratch.
//
// The Completed bitmap is trusted only as far as prev can back it: a cell
// marked complete whose value cannot be recovered from either triangle of
// prev (the matrix is nil, truncated, or has short rows) is treated as
// incomplete and recomputed rather than silently copied through as zero.
//
// On success the returned matrix equals the one an uninterrupted sweep would
// have produced. On another failure the returned *SweepError's Completed
// bitmap is the union of every cell finished so far, so resumption can be
// retried with monotonically shrinking work.
func ResumeDistanceMatrix(rankings []*ranking.PartialRanking, prev [][]float64, prevErr error, d DistanceWS) ([][]float64, error) {
	m := len(rankings)
	total := m * (m - 1) / 2
	var se *SweepError
	if !errors.As(prevErr, &se) || se.Completed == nil || se.M != m || se.Completed.Len() != total {
		return DistanceMatrixWith(rankings, d)
	}
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, m)
	}
	// Copy through exactly the completed cells whose values prev still holds;
	// a completed cell prev cannot back (either orientation) stays unmarked in
	// usable and is recomputed below.
	usable := guard.NewBitmap(total)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			idx := PairIndex(m, i, j)
			if !se.Completed.Get(idx) {
				continue
			}
			var v float64
			switch {
			case i < len(prev) && j < len(prev[i]):
				v = prev[i][j]
			case j < len(prev) && i < len(prev[j]):
				v = prev[j][i]
			default:
				continue
			}
			out[i][j] = v
			out[j][i] = v
			usable.Set(idx)
		}
	}
	err := forEachPairFrom(m, "distance_matrix_resume", usable, func(ws *Workspace, i, j int) error {
		v, err := d(ws, rankings[i], rankings[j])
		if err != nil {
			return err
		}
		out[i][j] = v
		out[j][i] = v
		return nil
	})
	return out, err
}

// forEachPair runs compute over every upper-triangle pair (i, j), i < j, of
// an m-element ensemble. See forEachPairFrom.
func forEachPair(m int, label string, compute func(ws *Workspace, i, j int) error) error {
	return forEachPairFrom(m, label, nil, compute)
}

// safeCompute invokes compute under panic supervision: a panicking cell
// returns a *guard.PanicError instead of unwinding into the worker loop. The
// named return plus guard.Capture keeps the no-panic path allocation-free, so
// supervision costs the zero-alloc sweep contract nothing.
func safeCompute(ws *Workspace, i, j int, compute func(ws *Workspace, i, j int) error) (err error) {
	defer guard.Capture(&err)
	return compute(ws, i, j)
}

// forEachPairFrom runs compute over every upper-triangle pair (i, j), i < j,
// of an m-element ensemble that is not already marked done, on GOMAXPROCS
// worker goroutines, each holding one pooled workspace and carrying the pprof
// label "kernel"=label while telemetry is enabled, so CPU profiles attribute
// samples to the sweep that spent them. done (nil for a fresh sweep) marks
// cells a previous interrupted sweep already finished, indexed by PairIndex;
// the producer skips them.
//
// The first error short-circuits: the producer stops feeding the job channel
// and the remaining queued pairs are skipped, not computed; the error is
// returned as a *SweepError recording the skipped-cell count and the bitmap
// of every cell completed so far (the union of done and this sweep's
// completions). A panic inside compute is contained per cell: it becomes a
// *guard.PanicError that short-circuits like any other error, the poisoned
// workspace is abandoned rather than returned to the pool, and no worker is
// lost — the sweep always runs to a clean join. Writes performed by compute
// must target disjoint cells per pair.
func forEachPairFrom(m int, label string, done *guard.Bitmap, compute func(ws *Workspace, i, j int) error) error {
	type cell struct{ i, j int }
	total := m * (m - 1) / 2
	completed := done.Clone()
	if completed.Len() != total {
		// No usable prior state (fresh sweep, or a bitmap from a different
		// ensemble size): start an empty completion map.
		completed = guard.NewBitmap(total)
	}
	preDone := completed.Count()
	jobs := make(chan cell, m)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	var failed atomic.Bool
	var attempted atomic.Int64
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		failed.Store(true)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			telemetry.Do(context.Background(), "kernel", label, func(context.Context) {
				ws := GetWorkspace()
				defer func() { PutWorkspace(ws) }()
				var cells int64
				for c := range jobs {
					if failed.Load() {
						continue
					}
					attempted.Add(1)
					cells++
					if err := safeCompute(ws, c.i, c.j, compute); err != nil {
						if _, panicked := guard.Recovered(err); panicked {
							// The panic may have left the workspace's scratch
							// state mid-mutation; hand the pool a fresh one.
							ws = NewWorkspace()
						}
						fail(err)
						continue
					}
					completed.Set(PairIndex(m, c.i, c.j))
				}
				tMatrixCells.Add(cells)
				tMatrixWorkerCells.Observe(cells)
			})
		}()
	}
produce:
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if done.Get(PairIndex(m, i, j)) {
				continue
			}
			if failed.Load() {
				break produce
			}
			jobs <- cell{i, j}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		skipped := int64(total) - int64(preDone) - attempted.Load()
		tMatrixShortCircuits.Inc()
		tMatrixSkipped.Add(skipped)
		return &SweepError{Err: firstErr, SkippedCells: skipped, M: m, Completed: completed}
	}
	return nil
}

// KendallW returns Kendall's coefficient of concordance W among m >= 2
// partial rankings over n >= 2 elements, with the standard tie correction:
//
//	W = (12 S) / (m^2 (n^3 - n) - m sum_i T_i),
//
// where S is the sum of squared deviations of the elements' total positions
// from their mean and T_i = sum over the buckets of ranking i of
// (|B|^3 - |B|). W = 1 means the rankings are identical bucket orders with
// no ties... more precisely complete concordance; W near 0 means no
// agreement. Returns ErrCorrelationUndefined when the denominator vanishes
// (e.g. every ranking is a single bucket).
func KendallW(rankings []*ranking.PartialRanking) (float64, error) {
	m := len(rankings)
	if m < 2 {
		return 0, ErrCorrelationUndefined
	}
	if err := ranking.CheckSameDomain(rankings...); err != nil {
		return 0, err
	}
	n := rankings[0].N()
	if n < 2 {
		return 0, ErrCorrelationUndefined
	}
	// Total (doubled) position per element and the tie correction.
	totals2 := make([]int64, n)
	var tieCorr float64
	for _, r := range rankings {
		for e := 0; e < n; e++ {
			totals2[e] += r.Pos2(e)
		}
		for b := 0; b < r.NumBuckets(); b++ {
			t := float64(r.BucketSize(b))
			tieCorr += t*t*t - t
		}
	}
	mean := float64(m) * float64(n+1) / 2 // mean total position
	var s float64
	for e := 0; e < n; e++ {
		d := float64(totals2[e])/2 - mean
		s += d * d
	}
	den := float64(m)*float64(m)*(float64(n)*float64(n)*float64(n)-float64(n)) -
		float64(m)*tieCorr
	if den <= 0 {
		return 0, ErrCorrelationUndefined
	}
	return 12 * s / den, nil
}
