package metrics

import (
	"repro/internal/cache"
	"repro/internal/ranking"
)

// Stable cache metric IDs of the four paper metrics. Custom distances cached
// through Cached must pick IDs outside this range; two different distance
// functions sharing an ID would serve each other's values.
const (
	CacheIDKProf uint32 = iota + 1
	CacheIDFProf
	CacheIDKHaus
	CacheIDFHaus
)

// Cached wraps a symmetric workspace-aware distance with the memoization
// layer: a hit costs one fingerprint read and one sharded map probe instead
// of the metric kernel, and a miss computes through d and inserts. The
// wrapper composes with every ...With engine (DistanceMatrixWith,
// ResumeDistanceMatrix, SumDistanceWith, BestOfInputsWith, ParallelEach
// candidate loops) because it is itself a DistanceWS.
//
// d must be symmetric (d(a,b) == d(b,a)) and pure: keys canonicalize the
// pair order, and a hit substitutes the memoized value for a recompute,
// which is bit-for-bit identical exactly because the function is
// deterministic in its arguments. All four paper metrics qualify; use
// distinct IDs for distinct distance functions.
func Cached(c *cache.Cache, id uint32, d DistanceWS) DistanceWS {
	return func(ws *Workspace, a, b *ranking.PartialRanking) (float64, error) {
		k := cache.PairKey(id, a.Fingerprint(), b.Fingerprint())
		if v, ok := c.Get(k); ok {
			return v, nil
		}
		v, err := d(ws, a, b)
		if err != nil {
			return 0, err
		}
		c.Put(k, v)
		return v, nil
	}
}

// CachedKProf, CachedFProf, CachedKHaus, and CachedFHaus bind the paper
// metrics to their stable cache IDs — the drop-in cached counterparts of the
// KProfWS-family adapters.
func CachedKProf(c *cache.Cache) DistanceWS { return Cached(c, CacheIDKProf, KProfWS) }
func CachedFProf(c *cache.Cache) DistanceWS { return Cached(c, CacheIDFProf, FProfWS) }
func CachedKHaus(c *cache.Cache) DistanceWS { return Cached(c, CacheIDKHaus, KHausWS) }
func CachedFHaus(c *cache.Cache) DistanceWS { return Cached(c, CacheIDFHaus, FHausWS) }
