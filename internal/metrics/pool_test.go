package metrics

import (
	"math/rand"
	"testing"

	"repro/internal/randrank"
	"repro/internal/telemetry"
)

// TestWorkspacePoolReuse is the regression guard for the package-level
// metric functions' pooling: sequential calls must reuse the pooled
// workspace's scratch state instead of allocating a fresh one per call. The
// pool telemetry makes the reuse observable — a per-call allocation
// regression shows up as one pool miss per get.
func TestWorkspacePoolReuse(t *testing.T) {
	was := telemetry.Enabled()
	telemetry.Enable()
	defer func() {
		if !was {
			telemetry.Disable()
		}
	}()

	rng := rand.New(rand.NewSource(11))
	a := randrank.Partial(rng, 300, 5)
	b := randrank.Partial(rng, 300, 5)

	// Warm the pool: after this, one workspace with sized buffers is pooled.
	if _, err := CountPairs(a, b); err != nil {
		t.Fatal(err)
	}
	base := PoolStats()

	const calls = 50
	for i := 0; i < calls; i++ {
		if _, err := CountPairs(a, b); err != nil {
			t.Fatal(err)
		}
		if _, err := FHaus(a, b); err != nil {
			t.Fatal(err)
		}
	}
	st := PoolStats()
	gets := st.Gets - base.Gets
	puts := st.Puts - base.Puts
	misses := st.Misses - base.Misses

	if gets != 2*calls {
		t.Fatalf("pool gets = %d, want %d (one per package-level call)", gets, 2*calls)
	}
	if puts != gets {
		t.Errorf("pool puts = %d, want %d (every get must be returned)", puts, gets)
	}
	// A GC between iterations may legitimately drop the pooled workspace, so
	// allow a handful of misses — but a per-call regression means a miss for
	// every get, which must fail loudly. The race runtime deliberately
	// perturbs sync.Pool caching, so the reuse bound only holds unraced.
	if raceEnabled {
		t.Skip("sync.Pool reuse is not deterministic under the race detector")
	}
	if misses > gets/10 {
		t.Errorf("pool misses = %d of %d gets; sequential calls are not reusing the pooled workspace", misses, gets)
	}
}

// TestPoolStatsCountsKernels pins the kernel invocation counters alongside
// the pool counters: the package-level entry points must charge exactly one
// kernel invocation per call.
func TestPoolStatsCountsKernels(t *testing.T) {
	was := telemetry.Enabled()
	telemetry.Enable()
	defer func() {
		if !was {
			telemetry.Disable()
		}
	}()

	rng := rand.New(rand.NewSource(12))
	a := randrank.Partial(rng, 40, 4)
	b := randrank.Partial(rng, 40, 4)

	cp := telemetry.GetCounter("metrics.kernel.countpairs").Value()
	fh := telemetry.GetCounter("metrics.kernel.fhaus").Value()
	if _, err := CountPairs(a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := FHaus(a, b); err != nil {
		t.Fatal(err)
	}
	if got := telemetry.GetCounter("metrics.kernel.countpairs").Value() - cp; got != 1 {
		t.Errorf("countpairs kernel counter advanced by %d, want 1", got)
	}
	if got := telemetry.GetCounter("metrics.kernel.fhaus").Value() - fh; got != 1 {
		t.Errorf("fhaus kernel counter advanced by %d, want 1", got)
	}
	// The packed-key kernel handled this n, so the fallback never fired.
	if v := telemetry.GetCounter("metrics.kernel.fhaus.fallback").Value(); v != 0 {
		t.Errorf("fhaus fallback counter = %d on n=40 domains, want 0", v)
	}
}
