package metrics

import (
	"math/rand"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

// The reflected embedding doubles every bucket and shifts positions to
// 2*sigma(i) - 1/2 (Appendix A.5.2).
func TestReflectEmbedPositions(t *testing.T) {
	sigma := ranking.MustFromBuckets(3, [][]int{{0, 1}, {2}})
	emb := ReflectEmbed(sigma)
	if emb.N() != 6 || emb.NumBuckets() != 2 {
		t.Fatalf("embed shape wrong: %v", emb)
	}
	for e := 0; e < 3; e++ {
		want := 2*sigma.Pos(e) - 0.5
		if emb.Pos(e) != want || emb.Pos(e+3) != want {
			t.Errorf("embed pos(%d) = %v/%v, want %v", e, emb.Pos(e), emb.Pos(e+3), want)
		}
	}
}

// Equation 7: (sigma_pi(d) + sigma_pi(d#))/2 = 2*sigma(d) - 1/2 for every
// tie-breaking order pi, because each bucket unfolds into the palindrome
// b1 .. bk bk# .. b1#.
func TestReflectOrderEquation7(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(12)
		sigma := randrank.Partial(rng, n, 4)
		pi := randrank.Full(rng, n)
		refl := ReflectOrder(sigma, pi)
		if !refl.IsFull() {
			t.Fatal("reflected order is not full")
		}
		for d := 0; d < n; d++ {
			got := (refl.Pos(d) + refl.Pos(d+n)) / 2
			want := 2*sigma.Pos(d) - 0.5
			if got != want {
				t.Fatalf("Eq. 7 violated at d=%d: %v != %v\nsigma=%v pi=%v refl=%v",
					d, got, want, sigma, pi, refl)
			}
			if refl.Pos(d) >= refl.Pos(d+n) {
				t.Fatalf("mirror of %d precedes it", d)
			}
		}
	}
}

// Lemma 21: K(sigma_pi, tau_pi) = 4*Kprof(sigma, tau) for EVERY pi.
func TestLemma21AnyPi(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(10)
		sigma := randrank.Partial(rng, n, 4)
		tau := randrank.Partial(rng, n, 4)
		pi := randrank.Full(rng, n)
		k, err := Kendall(ReflectOrder(sigma, pi), ReflectOrder(tau, pi))
		if err != nil {
			t.Fatal(err)
		}
		kp, _ := KProf(sigma, tau)
		if float64(k) != 4*kp {
			t.Fatalf("Lemma 21 violated: K=%d, 4*Kprof=%v\nsigma=%v\ntau=%v\npi=%v",
				k, 4*kp, sigma, tau, pi)
		}
	}
}

// For every pi, F(sigma_pi, tau_pi) >= 4*Fprof; equality needs nest-freeness.
func TestReflectionFootruleLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(10)
		sigma := randrank.Partial(rng, n, 4)
		tau := randrank.Partial(rng, n, 4)
		pi := randrank.Full(rng, n)
		f, err := Footrule(ReflectOrder(sigma, pi), ReflectOrder(tau, pi))
		if err != nil {
			t.Fatal(err)
		}
		fp, _ := FProf(sigma, tau)
		if float64(f) < 4*fp-1e-9 {
			t.Fatalf("reflected footrule %d below 4*Fprof=%v", f, 4*fp)
		}
	}
}

// Lemma 23: NestFreeOrder terminates, yields no nested elements, and
// achieves the Lemma 22 identity exactly.
func TestNestFreeOrderAndLemma22(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(12)
		sigma := randrank.Partial(rng, n, 5)
		tau := randrank.Partial(rng, n, 5)
		pi, err := NestFreeOrder(sigma, tau)
		if err != nil {
			t.Fatalf("NestFreeOrder failed: %v\nsigma=%v\ntau=%v", err, sigma, tau)
		}
		sigmaPi := ReflectOrder(sigma, pi)
		tauPi := ReflectOrder(tau, pi)
		for d := 0; d < n; d++ {
			if Nested(sigmaPi, tauPi, d, n) {
				t.Fatalf("element %d still nested under the nest-free order\nsigma=%v\ntau=%v\npi=%v",
					d, sigma, tau, pi)
			}
		}
		f, err := Footrule(sigmaPi, tauPi)
		if err != nil {
			t.Fatal(err)
		}
		fp, _ := FProf(sigma, tau)
		if float64(f) != 4*fp {
			t.Fatalf("Lemma 22 violated: F=%d, 4*Fprof=%v", f, 4*fp)
		}
	}
}

// The exported helpers reproduce the profile metrics end to end.
func TestProfViaReflection(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(10)
		sigma := randrank.Partial(rng, n, 4)
		tau := randrank.Partial(rng, n, 4)
		kvr, err := KProfViaReflection(sigma, tau)
		if err != nil {
			t.Fatal(err)
		}
		kp, _ := KProf(sigma, tau)
		if kvr != kp {
			t.Fatalf("KProfViaReflection %v != KProf %v", kvr, kp)
		}
		fvr, err := FProfViaReflection(sigma, tau)
		if err != nil {
			t.Fatal(err)
		}
		fp, _ := FProf(sigma, tau)
		if fvr != fp {
			t.Fatalf("FProfViaReflection %v != FProf %v", fvr, fp)
		}
	}
}

// Via the reflection, the Diaconis-Graham inequality on the doubled full
// rankings yields exactly Equation 5 — the paper's proof of Theorem 24,
// replayed numerically.
func TestEquation5ViaReflection(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(10)
		sigma := randrank.Partial(rng, n, 4)
		tau := randrank.Partial(rng, n, 4)
		pi, err := NestFreeOrder(sigma, tau)
		if err != nil {
			t.Fatal(err)
		}
		k, _ := Kendall(ReflectOrder(sigma, pi), ReflectOrder(tau, pi))
		f, _ := Footrule(ReflectOrder(sigma, pi), ReflectOrder(tau, pi))
		if !(k <= f && f <= 2*k) {
			t.Fatalf("Diaconis-Graham fails on reflections: K=%d F=%d", k, f)
		}
		// K = 4 Kprof and F = 4 Fprof, so Eq. 5 follows.
		kp, _ := KProf(sigma, tau)
		fp, _ := FProf(sigma, tau)
		if !(kp <= fp && fp <= 2*kp) {
			t.Fatalf("Eq. 5 fails: Kprof=%v Fprof=%v", kp, fp)
		}
	}
}

func TestReflectionDomainChecks(t *testing.T) {
	a := ranking.MustFromOrder([]int{0, 1})
	b := ranking.MustFromOrder([]int{0, 1, 2})
	if _, err := NestFreeOrder(a, b); err == nil {
		t.Error("domain mismatch accepted")
	}
	if _, err := KProfViaReflection(a, b); err == nil {
		t.Error("domain mismatch accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("ReflectOrder domain mismatch did not panic")
		}
	}()
	ReflectOrder(a, b)
}
