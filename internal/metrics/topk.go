package metrics

import (
	"fmt"

	"repro/internal/ranking"
)

// KAvg returns Kavg(a, b): the average Kendall distance K(sigma, tau) over
// all full refinements sigma of a and tau of b chosen independently and
// uniformly (Appendix A.3, following Fagin-Kumar-Sivakumar 2003). For a pair
// of elements the expected contribution is 1 if discordant, 1/2 if tied in
// exactly one ranking (the uniform tie-break agrees half the time), and 1/2
// if tied in both (two independent coin flips disagree half the time), so
//
//	Kavg = |U| + (|S| + |T|)/2 + |tiedInBoth|/2 = Kprof + |tiedInBoth|/2.
//
// Kavg equals Kprof exactly when no pair is tied in both rankings — in
// particular for top-k lists over their active domain. Kavg is not a
// distance measure on general partial rankings because Kavg(sigma, sigma)
// can be positive; the library therefore exposes it for analysis only.
func KAvg(a, b *ranking.PartialRanking) (float64, error) {
	pc, err := CountPairs(a, b)
	if err != nil {
		return 0, err
	}
	return float64(pc.Discordant) +
		float64(pc.TiedOnlyInA+pc.TiedOnlyInB)/2 +
		float64(pc.TiedInBoth)/2, nil
}

// KAvgBrute computes Kavg by enumerating all pairs of full refinements. It
// is exponential and exists to validate KAvg on small domains.
func KAvgBrute(a, b *ranking.PartialRanking) (float64, error) {
	if err := ranking.CheckSameDomain(a, b); err != nil {
		return 0, err
	}
	refA := fullRefinements(a)
	refB := fullRefinements(b)
	var sum int64
	for _, ra := range refA {
		for _, rb := range refB {
			k, err := Kendall(ra, rb)
			if err != nil {
				return 0, err
			}
			sum += k
		}
	}
	return float64(sum) / float64(int64(len(refA))*int64(len(refB))), nil
}

// FLocation returns the footrule distance with location parameter l,
// F^(l)(a, b), defined in Appendix A.3 for top-k lists: every element below
// the top k of a list is treated as if it sat at position l, and the L1
// distance of the adjusted position vectors is taken. Both inputs must be
// top-k lists (each may have its own k); l must be larger than both k's.
//
// For two top-k lists with the same k over a domain of size n,
// F^(l) = Fprof exactly at l = (n + k + 1)/2, which is the position of the
// bottom bucket; experiment E10 verifies this identity.
func FLocation(a, b *ranking.PartialRanking, l float64) (float64, error) {
	ka, okA := a.IsTopK()
	kb, okB := b.IsTopK()
	if !okA || !okB {
		return 0, fmt.Errorf("metrics: FLocation requires top-k lists")
	}
	return FLocationK(a, b, ka, kb, l)
}

// FLocationK is FLocation with the two k values given explicitly. IsTopK
// reports the largest consistent k, which overstates the intended one when
// a list's bottom bucket is a singleton (a top-(n-1) list is structurally a
// full ranking); callers that know the true k — e.g. the [10] scenario
// embedding — should use this variant.
func FLocationK(a, b *ranking.PartialRanking, ka, kb int, l float64) (float64, error) {
	if err := ranking.CheckSameDomain(a, b); err != nil {
		return 0, err
	}
	if l < float64(ka) || l < float64(kb) {
		return 0, fmt.Errorf("metrics: location parameter l=%v must be at least k (%d, %d)", l, ka, kb)
	}
	adjusted := func(pr *ranking.PartialRanking, k int, e int) float64 {
		if pr.BucketSize(pr.BucketOf(e)) == 1 && pr.Pos(e) <= float64(k) {
			return pr.Pos(e)
		}
		return l
	}
	var sum float64
	for e := 0; e < a.N(); e++ {
		d := adjusted(a, ka, e) - adjusted(b, kb, e)
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum, nil
}
