package metrics

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

func TestDistanceMatrixMatchesPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var in []*ranking.PartialRanking
	for i := 0; i < 9; i++ {
		in = append(in, randrank.Partial(rng, 20, 4))
	}
	mat, err := DistanceMatrix(in, KProf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if mat[i][i] != 0 {
			t.Errorf("diagonal [%d][%d] = %v", i, i, mat[i][i])
		}
		for j := range in {
			want, _ := KProf(in[i], in[j])
			if mat[i][j] != want {
				t.Errorf("[%d][%d] = %v, want %v", i, j, mat[i][j], want)
			}
			if mat[i][j] != mat[j][i] {
				t.Errorf("matrix not symmetric at %d,%d", i, j)
			}
		}
	}
}

func TestDistanceMatrixPropagatesErrors(t *testing.T) {
	in := []*ranking.PartialRanking{
		ranking.MustFromOrder([]int{0, 1}),
		ranking.MustFromOrder([]int{1, 0}),
	}
	boom := errors.New("boom")
	_, err := DistanceMatrix(in, func(a, b *ranking.PartialRanking) (float64, error) {
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	// Empty and singleton ensembles are fine.
	if mat, err := DistanceMatrix(nil, KProf); err != nil || len(mat) != 0 {
		t.Errorf("empty ensemble: %v %v", mat, err)
	}
	if mat, err := DistanceMatrix(in[:1], KProf); err != nil || len(mat) != 1 || mat[0][0] != 0 {
		t.Errorf("singleton ensemble: %v %v", mat, err)
	}
}

// TestDistanceMatrixShortCircuitsOnError checks that the first error stops
// the sweep: the producer must stop enqueueing and the workers must skip the
// already-queued cells, so only a small prefix of the m(m-1)/2 distances is
// ever computed.
func TestDistanceMatrixShortCircuitsOnError(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var in []*ranking.PartialRanking
	const m = 64
	for i := 0; i < m; i++ {
		in = append(in, randrank.Partial(rng, 10, 3))
	}
	boom := errors.New("boom")
	var calls atomic.Int64
	_, err := DistanceMatrix(in, func(a, b *ranking.PartialRanking) (float64, error) {
		calls.Add(1)
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Every distance errors, so the flag is raised on the very first call;
	// each worker may be mid-call plus the channel holds at most m queued
	// cells. Anything near the full triangle (2016) means no short-circuit.
	total := int64(m * (m - 1) / 2)
	if got := calls.Load(); got > total/4 {
		t.Errorf("computed %d of %d cells after first error, want an early stop", got, total)
	}
	// The abort must account for every skipped cell rather than silently
	// dropping them: skipped + attempted = the full upper triangle.
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *SweepError", err)
	}
	if se.SkippedCells+calls.Load() != total {
		t.Errorf("skipped %d + computed %d != %d total cells",
			se.SkippedCells, calls.Load(), total)
	}
	if se.SkippedCells == 0 {
		t.Error("short-circuit skipped no cells; accounting or early stop is broken")
	}
}

// TestDistanceMatrixPartialOnWorkerFailure injects failures into a subset of
// cells and checks the degraded contract of the sweep: the error accounts for
// exactly the never-attempted cells, and the partial matrix returned
// alongside it is internally consistent — every completed cell holds the true
// symmetric distance, every other cell is untouched.
func TestDistanceMatrixPartialOnWorkerFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var in []*ranking.PartialRanking
	const m = 24
	for i := 0; i < m; i++ {
		in = append(in, randrank.Partial(rng, 15, 3))
	}
	boom := errors.New("worker blew up")
	const poison = 7 // every pair touching this index fails
	var attempted atomic.Int64
	var completed [m][m]atomic.Bool
	mat, err := DistanceMatrix(in, func(a, b *ranking.PartialRanking) (float64, error) {
		attempted.Add(1)
		var i, j int
		for idx, r := range in {
			if r == a {
				i = idx
			}
			if r == b {
				j = idx
			}
		}
		if i == poison || j == poison {
			return 0, boom
		}
		completed[i][j].Store(true)
		return KProf(a, b)
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *SweepError", err)
	}
	total := int64(m * (m - 1) / 2)
	if se.SkippedCells+attempted.Load() != total {
		t.Errorf("skipped %d + attempted %d != %d total cells",
			se.SkippedCells, attempted.Load(), total)
	}
	if mat == nil {
		t.Fatal("no partial matrix returned alongside the sweep error")
	}
	done := 0
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if completed[i][j].Load() {
				done++
				want, _ := KProf(in[i], in[j])
				if mat[i][j] != want {
					t.Errorf("completed cell [%d][%d] = %v, want %v", i, j, mat[i][j], want)
				}
				if mat[j][i] != mat[i][j] {
					t.Errorf("completed cell [%d][%d] not mirrored", i, j)
				}
			} else if mat[i][j] != 0 || mat[j][i] != 0 {
				t.Errorf("uncomputed cell [%d][%d] = %v/%v, want 0", i, j, mat[i][j], mat[j][i])
			}
		}
	}
	if done == 0 {
		t.Error("no cell completed before the failure; partial-matrix contract untested")
	}
}

func TestDistanceMatrixWithMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var in []*ranking.PartialRanking
	for i := 0; i < 10; i++ {
		in = append(in, randrank.Partial(rng, 25, 4))
	}
	want, err := DistanceMatrix(in, KProf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DistanceMatrixWith(in, KProfWS)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("[%d][%d] = %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
	for _, d := range []DistanceWS{FProfWS, KHausWS, FHausWS} {
		if _, err := DistanceMatrixWith(in, d); err != nil {
			t.Errorf("adapter failed: %v", err)
		}
	}
}

func TestKendallWEndpoints(t *testing.T) {
	// Complete concordance among full rankings.
	a := ranking.MustFromOrder([]int{0, 1, 2, 3})
	w, err := KendallW([]*ranking.PartialRanking{a, a, a})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-1) > 1e-12 {
		t.Errorf("unanimous W = %v, want 1", w)
	}
	// Perfect discordance between two reversed rankings: W = 0.
	w, err = KendallW([]*ranking.PartialRanking{a, a.Reverse()})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w) > 1e-12 {
		t.Errorf("reversed-pair W = %v, want 0", w)
	}
}

// Tie-corrected W still reaches 1 for identical bucket orders.
func TestKendallWTieCorrection(t *testing.T) {
	pr := ranking.MustFromBuckets(5, [][]int{{0, 1}, {2}, {3, 4}})
	w, err := KendallW([]*ranking.PartialRanking{pr, pr, pr, pr})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-1) > 1e-12 {
		t.Errorf("identical tied rankings W = %v, want 1", w)
	}
}

// W decreases as voter noise grows.
func TestKendallWMonotoneInNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	avgW := func(theta float64) float64 {
		var sum float64
		const trials = 20
		for i := 0; i < trials; i++ {
			in, _ := randrank.MallowsEnsemble(rng, 30, 5, theta)
			w, err := KendallW(in)
			if err != nil {
				t.Fatal(err)
			}
			sum += w
		}
		return sum / trials
	}
	noisy := avgW(0)
	tight := avgW(2)
	if !(tight > noisy) {
		t.Errorf("W not increasing with concordance: theta=0 -> %.3f, theta=2 -> %.3f", noisy, tight)
	}
	if noisy > 0.5 {
		t.Errorf("independent voters W = %.3f, expected near 0", noisy)
	}
	if tight < 0.6 {
		t.Errorf("concordant voters W = %.3f, expected near 1", tight)
	}
}

func TestKendallWBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(15)
		m := 2 + rng.Intn(6)
		var in []*ranking.PartialRanking
		for i := 0; i < m; i++ {
			in = append(in, randrank.Partial(rng, n, 4))
		}
		w, err := KendallW(in)
		if errors.Is(err, ErrCorrelationUndefined) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if w < -1e-9 || w > 1+1e-9 {
			t.Fatalf("W out of [0,1]: %v", w)
		}
	}
}

func TestKendallWUndefinedCases(t *testing.T) {
	a := ranking.MustFromOrder([]int{0, 1})
	if _, err := KendallW([]*ranking.PartialRanking{a}); !errors.Is(err, ErrCorrelationUndefined) {
		t.Errorf("single ranking: %v", err)
	}
	tiny := ranking.MustFromBuckets(1, [][]int{{0}})
	if _, err := KendallW([]*ranking.PartialRanking{tiny, tiny}); !errors.Is(err, ErrCorrelationUndefined) {
		t.Errorf("n=1: %v", err)
	}
	all := ranking.MustFromBuckets(3, [][]int{{0, 1, 2}})
	if _, err := KendallW([]*ranking.PartialRanking{all, all}); !errors.Is(err, ErrCorrelationUndefined) {
		t.Errorf("all tied: %v", err)
	}
	b := ranking.MustFromOrder([]int{0, 1, 2})
	if _, err := KendallW([]*ranking.PartialRanking{a, b}); err == nil {
		t.Error("domain mismatch accepted")
	}
}
