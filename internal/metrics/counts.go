// Package metrics implements the distance measures of Fagin, Kumar, Mahdian,
// Sivakumar, and Vee, "Comparing and Aggregating Rankings with Ties"
// (PODS 2004): the classical Kendall tau and Spearman footrule on full
// rankings (Section 2.2), the penalty-parameter family K^(p) and the profile
// metrics Kprof = K^(1/2) and Fprof (Section 3.1), the Hausdorff metrics
// KHaus and FHaus via both the Theorem 5 refinement characterization and the
// Proposition 6 counting formula, the top-k comparison measures Kavg and
// F^(l) of Appendix A.3, Goodman-Kruskal gamma (Related work), and
// brute-force reference implementations that enumerate full refinements.
//
// All fast paths are O(n log n); every one of them is pinned to an O(n^2) or
// exhaustive reference by the package tests.
package metrics

import (
	"fmt"
	"sort"

	"repro/internal/permutation"
	"repro/internal/ranking"
)

// PairCounts classifies all unordered pairs {i, j} of distinct domain
// elements with respect to two partial rankings, following the case analysis
// of Section 3.1 and Proposition 6 of the paper.
type PairCounts struct {
	// Concordant counts pairs in different buckets of both rankings, in the
	// same order (Case 1, no penalty).
	Concordant int64
	// Discordant counts pairs in different buckets of both rankings, in
	// opposite orders (Case 1, penalty 1). This is the set U of Prop. 6.
	Discordant int64
	// TiedOnlyInA counts pairs tied in the first ranking but not the second
	// (the set S of Prop. 6 with sigma = first argument).
	TiedOnlyInA int64
	// TiedOnlyInB counts pairs tied in the second ranking but not the first
	// (the set T of Prop. 6).
	TiedOnlyInB int64
	// TiedInBoth counts pairs tied in both rankings (Case 2, no penalty).
	TiedInBoth int64
}

// Total returns the number of classified pairs, n(n-1)/2.
func (pc PairCounts) Total() int64 {
	return pc.Concordant + pc.Discordant + pc.TiedOnlyInA + pc.TiedOnlyInB + pc.TiedInBoth
}

// CountPairs classifies all pairs of distinct elements. It is the single
// counting engine behind K^(p), Kprof, KHaus (Prop. 6), Kavg, and
// Goodman-Kruskal gamma. It borrows a pooled Workspace, so repeated calls
// reuse scratch state instead of rebuilding it; batch engines that hold
// their own Workspace should call (*Workspace).CountPairs directly.
func CountPairs(a, b *ranking.PartialRanking) (PairCounts, error) {
	ws := GetWorkspace()
	pc, err := ws.CountPairs(a, b)
	PutWorkspace(ws)
	return pc, err
}

// CountPairsAlloc is the pre-workspace engine, retained verbatim as an
// independent reference: it walks a's buckets in order, counts discordances
// with a freshly allocated Fenwick tree indexed by b's bucket indices, and
// counts pairs tied in both rankings with a hash map keyed by (a-bucket,
// b-bucket). The property tests pin the workspace kernel to it exactly, and
// the benchmark harness uses it as the before-side of the allocation
// regression numbers.
func CountPairsAlloc(a, b *ranking.PartialRanking) (PairCounts, error) {
	if err := ranking.CheckSameDomain(a, b); err != nil {
		return PairCounts{}, err
	}
	n := a.N()
	var pc PairCounts

	// Pairs tied in a and tied in b, via bucket sizes.
	tiedA := tiedPairs(a)
	tiedB := tiedPairs(b)

	// Pairs tied in both: group elements by (bucket in a, bucket in b).
	joint := make(map[uint64]int64, n)
	for e := 0; e < n; e++ {
		key := uint64(a.BucketOf(e))<<32 | uint64(uint32(b.BucketOf(e)))
		joint[key]++
	}
	for _, c := range joint {
		pc.TiedInBoth += c * (c - 1) / 2
	}
	pc.TiedOnlyInA = tiedA - pc.TiedInBoth
	pc.TiedOnlyInB = tiedB - pc.TiedInBoth

	// Discordant pairs among those untied in both: walk a's buckets from
	// best to worst; an earlier element e and a later element f are
	// discordant exactly when b ranks f strictly ahead of e. Summing, for
	// each new element, the count of already-seen elements in strictly
	// later b-buckets gives |U|. Elements of one a-bucket are inserted only
	// after the whole bucket is counted, so a-tied pairs contribute
	// nothing; b-tied pairs are excluded by the strict range.
	ft := permutation.NewFenwick(b.NumBuckets())
	var seen int64
	for ai := 0; ai < a.NumBuckets(); ai++ {
		bucket := a.Bucket(ai)
		for _, e := range bucket {
			bi := b.BucketOf(e)
			// Already-seen elements with b-bucket > bi.
			pc.Discordant += seen - ft.PrefixSum(bi)
		}
		for _, e := range bucket {
			ft.Add(b.BucketOf(e), 1)
		}
		seen += int64(len(bucket))
	}

	total := int64(n) * int64(n-1) / 2
	pc.Concordant = total - tiedA - tiedB + pc.TiedInBoth - pc.Discordant
	return pc, nil
}

// countPairsViaSort is the previous engine — sort by (a-position,
// b-position), then count strict inversions of the b sequence — retained as
// an independent implementation for cross-checks and the ablation
// benchmark.
func countPairsViaSort(a, b *ranking.PartialRanking) (PairCounts, error) {
	if err := ranking.CheckSameDomain(a, b); err != nil {
		return PairCounts{}, err
	}
	n := a.N()
	var pc PairCounts
	tiedA := tiedPairs(a)
	tiedB := tiedPairs(b)
	joint := make(map[uint64]int64, n)
	for e := 0; e < n; e++ {
		key := uint64(a.BucketOf(e))<<32 | uint64(uint32(b.BucketOf(e)))
		joint[key]++
	}
	for _, c := range joint {
		pc.TiedInBoth += c * (c - 1) / 2
	}
	pc.TiedOnlyInA = tiedA - pc.TiedInBoth
	pc.TiedOnlyInB = tiedB - pc.TiedInBoth
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool {
		ax, ay := a.Pos2(idx[x]), a.Pos2(idx[y])
		if ax != ay {
			return ax < ay
		}
		return b.Pos2(idx[x]) < b.Pos2(idx[y])
	})
	seq := make([]int64, n)
	for i, e := range idx {
		seq[i] = b.Pos2(e)
	}
	pc.Discordant = permutation.CountInversions(seq)
	total := int64(n) * int64(n-1) / 2
	pc.Concordant = total - tiedA - tiedB + pc.TiedInBoth - pc.Discordant
	return pc, nil
}

// CountPairsNaive is the O(n^2) reference classifier.
func CountPairsNaive(a, b *ranking.PartialRanking) (PairCounts, error) {
	if err := ranking.CheckSameDomain(a, b); err != nil {
		return PairCounts{}, err
	}
	var pc PairCounts
	n := a.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ta, tb := a.Tied(i, j), b.Tied(i, j)
			switch {
			case ta && tb:
				pc.TiedInBoth++
			case ta:
				pc.TiedOnlyInA++
			case tb:
				pc.TiedOnlyInB++
			case a.Ahead(i, j) == b.Ahead(i, j):
				pc.Concordant++
			default:
				pc.Discordant++
			}
		}
	}
	return pc, nil
}

// tiedPairs returns the number of pairs sharing a bucket.
func tiedPairs(pr *ranking.PartialRanking) int64 {
	var t int64
	for i := 0; i < pr.NumBuckets(); i++ {
		s := int64(pr.BucketSize(i))
		t += s * (s - 1) / 2
	}
	return t
}

// errNotFull is returned by the full-ranking metrics when an input has ties.
func errNotFull(name string) error {
	return fmt.Errorf("metrics: %s requires full rankings (no ties)", name)
}

// errPenaltyRange is returned by the K^(p) family for p outside [0, 1].
func errPenaltyRange(p float64) error {
	return fmt.Errorf("metrics: penalty parameter p=%v out of [0,1]", p)
}
