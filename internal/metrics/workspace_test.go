package metrics

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

// workspacePairCases yields the pair workloads the kernels must agree on:
// Mallows(theta) full-ranking ensembles at several dispersions, random
// bucket orders, heavily-tied orders (buckets up to half the domain), and
// degenerate shapes (single bucket, identity, reverse, top-k lists).
func workspacePairCases(t *testing.T) [][2]*ranking.PartialRanking {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	var cases [][2]*ranking.PartialRanking
	addPairs := func(rs []*ranking.PartialRanking) {
		for i := 0; i+1 < len(rs); i += 2 {
			cases = append(cases, [2]*ranking.PartialRanking{rs[i], rs[i+1]})
		}
	}
	for _, theta := range []float64{0, 0.5, 2} {
		for _, n := range []int{1, 2, 7, 40, 150} {
			in, _ := randrank.MallowsEnsemble(rng, n, 6, theta)
			addPairs(in)
		}
	}
	for _, n := range []int{3, 10, 60, 200} {
		for _, maxBucket := range []int{2, 5, n/2 + 1, n} {
			addPairs([]*ranking.PartialRanking{
				randrank.Partial(rng, n, maxBucket),
				randrank.Partial(rng, n, maxBucket),
			})
		}
		one := ranking.MustFromBuckets(n, [][]int{allOf(n)})
		cases = append(cases,
			[2]*ranking.PartialRanking{one, randrank.Partial(rng, n, 4)},
			[2]*ranking.PartialRanking{one, one},
			[2]*ranking.PartialRanking{randrank.TopK(rng, n, n/3+1), randrank.TopK(rng, n, n/2)},
		)
		id := identityRanking(n)
		cases = append(cases, [2]*ranking.PartialRanking{id, id.Reverse()})
	}
	return cases
}

func allOf(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestWorkspaceKernelsMatchAllocatingPaths pins every workspace kernel to
// the retained allocating engines, reusing ONE workspace across all cases —
// including shrinking and growing domain sizes — so stale scratch state
// would be caught.
func TestWorkspaceKernelsMatchAllocatingPaths(t *testing.T) {
	ws := NewWorkspace()
	for ci, c := range workspacePairCases(t) {
		a, b := c[0], c[1]
		name := fmt.Sprintf("case %d (n=%d)", ci, a.N())

		want, err := CountPairsAlloc(a, b)
		if err != nil {
			t.Fatalf("%s: CountPairsAlloc: %v", name, err)
		}
		got, err := ws.CountPairs(a, b)
		if err != nil {
			t.Fatalf("%s: ws.CountPairs: %v", name, err)
		}
		if got != want {
			t.Errorf("%s: ws.CountPairs = %+v, want %+v", name, got, want)
		}
		viaSort, err := countPairsViaSort(a, b)
		if err != nil {
			t.Fatalf("%s: countPairsViaSort: %v", name, err)
		}
		if got != viaSort {
			t.Errorf("%s: ws.CountPairs = %+v, sort engine %+v", name, got, viaSort)
		}

		wantFH, err := FHausViaRefinement(a, b)
		if err != nil {
			t.Fatalf("%s: FHausViaRefinement: %v", name, err)
		}
		gotFH, err := ws.FHaus(a, b)
		if err != nil {
			t.Fatalf("%s: ws.FHaus: %v", name, err)
		}
		if gotFH != wantFH {
			t.Errorf("%s: ws.FHaus = %d, want %d", name, gotFH, wantFH)
		}

		d, err := ws.Distances(a, b)
		if err != nil {
			t.Fatalf("%s: ws.Distances: %v", name, err)
		}
		if d.KProf != KProfFromCounts(want) {
			t.Errorf("%s: Distances.KProf = %v, want %v", name, d.KProf, KProfFromCounts(want))
		}
		if wantF, _ := FProf(a, b); d.FProf != wantF {
			t.Errorf("%s: Distances.FProf = %v, want %v", name, d.FProf, wantF)
		}
		if d.KHaus != KHausFromCounts(want) {
			t.Errorf("%s: Distances.KHaus = %v, want %v", name, d.KHaus, KHausFromCounts(want))
		}
		if d.FHaus != wantFH {
			t.Errorf("%s: Distances.FHaus = %d, want %d", name, d.FHaus, wantFH)
		}

		if a.IsFull() && b.IsFull() {
			wantK, err := KendallViaInversions(a, b)
			if err != nil {
				t.Fatalf("%s: KendallViaInversions: %v", name, err)
			}
			gotK, err := ws.Kendall(a, b)
			if err != nil {
				t.Fatalf("%s: ws.Kendall: %v", name, err)
			}
			if gotK != wantK {
				t.Errorf("%s: ws.Kendall = %d, want %d", name, gotK, wantK)
			}
		}
	}
}

// TestWorkspaceKernelsMatchNaive pins the workspace engine to the O(n^2)
// classifier on small exhaustively-random instances, independently of the
// other fast engines.
func TestWorkspaceKernelsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ws := NewWorkspace()
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(12)
		a := randrank.Partial(rng, n, 1+rng.Intn(n))
		b := randrank.Partial(rng, n, 1+rng.Intn(n))
		want, err := CountPairsNaive(a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ws.CountPairs(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: ws.CountPairs = %+v, naive %+v\na=%v\nb=%v", trial, got, want, a, b)
		}
	}
}

// TestWorkspaceErrors checks the kernels propagate domain and fullness
// errors like the package-level paths.
func TestWorkspaceErrors(t *testing.T) {
	ws := NewWorkspace()
	a := ranking.MustFromOrder([]int{0, 1, 2})
	b := ranking.MustFromOrder([]int{0, 1})
	if _, err := ws.CountPairs(a, b); err == nil {
		t.Error("domain mismatch accepted by ws.CountPairs")
	}
	if _, err := ws.FHaus(a, b); err == nil {
		t.Error("domain mismatch accepted by ws.FHaus")
	}
	if _, err := ws.Distances(a, b); err == nil {
		t.Error("domain mismatch accepted by ws.Distances")
	}
	tied := ranking.MustFromBuckets(3, [][]int{{0, 1}, {2}})
	if _, err := ws.Kendall(a, tied); err == nil {
		t.Error("tied input accepted by ws.Kendall")
	}
	if _, err := ws.Footrule(a, tied); err == nil {
		t.Error("tied input accepted by ws.Footrule")
	}
	if _, err := ws.KWithPenalty(a, a, 1.5); err == nil {
		t.Error("p=1.5 accepted by ws.KWithPenalty")
	}
}

// TestWorkspaceZeroAllocs is the allocation-regression pin of the PR 1
// acceptance criteria: warm workspace kernels must perform zero heap
// allocations per call. Skipped under the race detector, whose
// instrumentation allocates.
func TestWorkspaceZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	rng := rand.New(rand.NewSource(3))
	a := randrank.Partial(rng, 1000, 6)
	b := randrank.Partial(rng, 1000, 6)
	full1 := randrank.Full(rng, 1000)
	full2 := randrank.Full(rng, 1000)
	ws := NewWorkspace()
	// Warm-up: size every scratch buffer once.
	if _, err := ws.Distances(a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Kendall(full1, full2); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"CountPairs", func() { ws.CountPairs(a, b) }},
		{"KProf", func() { ws.KProf(a, b) }},
		{"FProf", func() { ws.FProf(a, b) }},
		{"KHaus", func() { ws.KHaus(a, b) }},
		{"FHaus", func() { ws.FHaus(a, b) }},
		{"KWithPenalty", func() { ws.KWithPenalty(a, b, 0.25) }},
		{"KAvg", func() { ws.KAvg(a, b) }},
		{"Gamma", func() { ws.Gamma(a, b) }},
		{"Distances", func() { ws.Distances(a, b) }},
		{"Kendall", func() { ws.Kendall(full1, full2) }},
		{"Footrule", func() { ws.Footrule(full1, full2) }},
	} {
		if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
			t.Errorf("warm ws.%s: %.1f allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestPooledPathsLowAllocs checks the pooled package-level wrappers stay at
// O(1) allocations (they may pay for the pool bookkeeping but must not
// rebuild scratch state).
func TestPooledPathsLowAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	rng := rand.New(rand.NewSource(4))
	a := randrank.Partial(rng, 1000, 6)
	b := randrank.Partial(rng, 1000, 6)
	if _, err := CountPairs(a, b); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() { CountPairs(a, b) }); allocs > 2 {
		t.Errorf("pooled CountPairs: %.1f allocs/op, want <= 2", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { FHaus(a, b) }); allocs > 2 {
		t.Errorf("pooled FHaus: %.1f allocs/op, want <= 2", allocs)
	}
}

// TestWorkspaceMallowsEnsembleSweep exercises one shared workspace over a
// whole Mallows ensemble's pairwise sweep and pins every distance to the
// allocating engines — the ensemble shape the batch engines rely on.
func TestWorkspaceMallowsEnsembleSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in, _ := randrank.MallowsEnsemble(rng, 35, 8, 1.0)
	// Coarsen half the ensemble into heavily-tied bucket orders by score.
	for i := 1; i < len(in); i += 2 {
		scores := make([]float64, in[i].N())
		for e := range scores {
			scores[e] = float64(int(in[i].Pos(e)) / 7)
		}
		in[i] = ranking.FromScores(scores)
	}
	ws := NewWorkspace()
	for i := range in {
		for j := i + 1; j < len(in); j++ {
			want, err := CountPairsAlloc(in[i], in[j])
			if err != nil {
				t.Fatal(err)
			}
			got, err := ws.CountPairs(in[i], in[j])
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("pair (%d,%d): ws %+v, alloc %+v", i, j, got, want)
			}
			wantFH, err := FHausViaRefinement(in[i], in[j])
			if err != nil {
				t.Fatal(err)
			}
			gotFH, err := ws.FHaus(in[i], in[j])
			if err != nil {
				t.Fatal(err)
			}
			if gotFH != wantFH {
				t.Fatalf("pair (%d,%d): ws.FHaus %d, refinement %d", i, j, gotFH, wantFH)
			}
		}
	}
}

// TestCompareAllMatchesPointwise pins the batched ensemble engine to the
// single-pair paths.
func TestCompareAllMatchesPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var in []*ranking.PartialRanking
	for i := 0; i < 11; i++ {
		in = append(in, randrank.Partial(rng, 30, 5))
	}
	mat, err := CompareAll(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if mat[i][i] != (AllDistances{}) {
			t.Errorf("diagonal [%d] = %+v, want zero", i, mat[i][i])
		}
		for j := range in {
			want, err := Distances(in[i], in[j])
			if err != nil {
				t.Fatal(err)
			}
			if mat[i][j] != want {
				t.Errorf("[%d][%d] = %+v, want %+v", i, j, mat[i][j], want)
			}
			if mat[i][j] != mat[j][i] {
				t.Errorf("CompareAll not symmetric at %d,%d", i, j)
			}
		}
	}
	if _, err := CompareAll(nil); err != nil {
		t.Errorf("empty ensemble: %v", err)
	}
}
