package metrics

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/guard"
	"repro/internal/telemetry"
)

// Gated telemetry instruments of the parallel candidate-evaluation pool.
var (
	tParallelTasks  = telemetry.GetCounter("metrics.parallel.tasks")
	tParallelAborts = telemetry.GetCounter("metrics.parallel.aborts")
)

// ParallelEach runs compute(ws, i) for every index in [0, count) on up to
// GOMAXPROCS worker goroutines — the one-dimensional sibling of the pairwise
// sweep engine, with the same contract: each worker holds one pooled
// workspace for its whole lifetime and carries the pprof label
// "kernel"=label while telemetry is enabled; the first error short-circuits
// the producer and the remaining queued indices are skipped; a panic inside
// compute is contained per index as a *guard.PanicError (the poisoned
// workspace is abandoned, the sweep runs to a clean join).
//
// Determinism: compute must write only to slots owned by its index (e.g.
// out[i]). Because every slot is computed exactly once by one worker, in the
// same code path the serial loop would take, a parallel fill followed by a
// serial reduce in index order is bit-for-bit identical to the serial
// evaluation — which is how the aggregate candidate-scoring loops stay
// reproducible while saturating the machine.
func ParallelEach(count int, label string, compute func(ws *Workspace, i int) error) error {
	if count <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > count {
		workers = count
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int, workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	var failed atomic.Bool
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		failed.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			telemetry.Do(context.Background(), "kernel", label, func(context.Context) {
				ws := GetWorkspace()
				defer func() { PutWorkspace(ws) }()
				var tasks int64
				for i := range jobs {
					if failed.Load() {
						continue
					}
					tasks++
					if err := safeComputeIndex(ws, i, compute); err != nil {
						if _, panicked := guard.Recovered(err); panicked {
							// The panic may have left the workspace's scratch
							// state mid-mutation; hand the pool a fresh one.
							ws = NewWorkspace()
						}
						fail(err)
					}
				}
				tParallelTasks.Add(tasks)
			})
		}()
	}
produce:
	for i := 0; i < count; i++ {
		if failed.Load() {
			break produce
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		tParallelAborts.Inc()
	}
	return firstErr
}

// safeComputeIndex invokes compute under panic supervision; see safeCompute.
func safeComputeIndex(ws *Workspace, i int, compute func(ws *Workspace, i int) error) (err error) {
	defer guard.Capture(&err)
	return compute(ws, i)
}
