package metrics

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/guard"
)

// Every index in [0, count) is computed exactly once, whatever the worker
// count does with the schedule.
func TestParallelEachCoversEveryIndexOnce(t *testing.T) {
	const count = 1000
	var seen [count]atomic.Int32
	err := ParallelEach(count, "test_cover", func(_ *Workspace, i int) error {
		seen[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("index %d computed %d times, want 1", i, got)
		}
	}
}

// The first error is returned and stops the producer: only a fraction of the
// index space is ever attempted.
func TestParallelEachShortCircuits(t *testing.T) {
	const count = 10_000
	boom := errors.New("boom")
	var calls atomic.Int64
	err := ParallelEach(count, "test_abort", func(_ *Workspace, i int) error {
		calls.Add(1)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := calls.Load(); got > count/4 {
		t.Errorf("attempted %d of %d indices after first error", got, count)
	}
}

// A panicking compute surfaces as *guard.PanicError instead of crashing the
// pool, and the sweep still joins cleanly.
func TestParallelEachContainsPanics(t *testing.T) {
	err := ParallelEach(64, "test_panic", func(_ *Workspace, i int) error {
		if i == 7 {
			panic("kernel exploded")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic swallowed")
	}
	var pe *guard.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T (%v), want *guard.PanicError", err, err)
	}
}

// Degenerate counts are no-ops.
func TestParallelEachDegenerateCounts(t *testing.T) {
	for _, count := range []int{0, -3} {
		called := false
		if err := ParallelEach(count, "test_empty", func(_ *Workspace, i int) error {
			called = true
			return nil
		}); err != nil {
			t.Fatalf("count %d: %v", count, err)
		}
		if called {
			t.Fatalf("count %d: compute invoked", count)
		}
	}
}

// Workers hand each compute a usable workspace (the panic path swaps in a
// fresh one; both must be non-nil and functional).
func TestParallelEachProvidesWorkspaces(t *testing.T) {
	var bad atomic.Bool
	err := ParallelEach(128, "test_ws", func(ws *Workspace, i int) error {
		if ws == nil {
			bad.Store(true)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Load() {
		t.Error("compute received a nil workspace")
	}
}
