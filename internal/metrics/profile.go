package metrics

import (
	"repro/internal/ranking"
)

// KWithPenalty returns the Kendall distance with penalty parameter p,
// K^(p)(a, b) (Section 3.1): pairs ordered oppositely in the two rankings
// cost 1, pairs tied in exactly one ranking cost p, and all other pairs cost
// nothing. Proposition 13: K^(p) is a metric for p in [1/2, 1], a near
// metric for p in (0, 1/2), and not even a distance measure for p = 0.
// p must lie in [0, 1].
func KWithPenalty(a, b *ranking.PartialRanking, p float64) (float64, error) {
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	return ws.KWithPenalty(a, b, p)
}

// KProf returns Kprof(a, b) = K^(1/2)(a, b), the Kendall profile metric: the
// L1 distance between the K-profiles of the two rankings (Section 3.1). The
// value is always an integral multiple of 1/2 and is computed exactly.
func KProf(a, b *ranking.PartialRanking) (float64, error) {
	d2, err := KProf2(a, b)
	if err != nil {
		return 0, err
	}
	return float64(d2) / 2, nil
}

// KProf2 returns the doubled Kendall profile distance 2*Kprof(a, b) as an
// exact integer: 2|U| + |S| + |T| in the notation of Proposition 6.
func KProf2(a, b *ranking.PartialRanking) (int64, error) {
	pc, err := CountPairs(a, b)
	if err != nil {
		return 0, err
	}
	return 2*pc.Discordant + pc.TiedOnlyInA + pc.TiedOnlyInB, nil
}

// KProfFromCounts computes Kprof from a precomputed pair classification.
func KProfFromCounts(pc PairCounts) float64 {
	return float64(pc.Discordant) + float64(pc.TiedOnlyInA+pc.TiedOnlyInB)/2
}

// KProfile returns the K-profile of a partial ranking (Section 3.1): the
// vector over ordered pairs (i, j), i != j, with entry +1/4 when sigma(i) <
// sigma(j), -1/4 when sigma(i) > sigma(j), and 0 when tied. The vector is
// returned indexed by i*n + j (diagonal entries are 0). It is O(n^2) in size
// and exists for tests and teaching; Kprof itself never materializes it.
func KProfile(pr *ranking.PartialRanking) []float64 {
	n := pr.N()
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			switch {
			case pr.Ahead(i, j):
				out[i*n+j] = 0.25
			case pr.Ahead(j, i):
				out[i*n+j] = -0.25
			}
		}
	}
	return out
}

// FProf returns Fprof(a, b) = L1(a, b), the footrule profile metric: the L1
// distance between the position vectors (F-profiles) of the two partial
// rankings (Section 3.1). The value is an integral multiple of 1/2.
func FProf(a, b *ranking.PartialRanking) (float64, error) {
	d2, err := FProf2(a, b)
	if err != nil {
		return 0, err
	}
	return float64(d2) / 2, nil
}

// FProf2 returns the doubled footrule profile distance 2*Fprof(a, b) as an
// exact integer. The sweep reads both rankings through their copy-free
// accessors and never allocates.
func FProf2(a, b *ranking.PartialRanking) (int64, error) {
	if err := ranking.CheckSameDomain(a, b); err != nil {
		return 0, err
	}
	aof, bof := a.BucketIndices(), b.BucketIndices()
	apos, bpos := a.BucketPositions2(), b.BucketPositions2()
	var sum2 int64
	for e := range aof {
		d := apos[aof[e]] - bpos[bof[e]]
		if d < 0 {
			d = -d
		}
		sum2 += d
	}
	return sum2, nil
}
