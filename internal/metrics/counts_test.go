package metrics

import (
	"math/rand"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

// forEachPartialRanking adapts ranking.ForEachPartialRanking for the
// exhaustive checks in this package.
func forEachPartialRanking(n int, fn func(pr *ranking.PartialRanking)) {
	ranking.ForEachPartialRanking(n, func(pr *ranking.PartialRanking) bool {
		fn(pr)
		return true
	})
}

func TestForEachPartialRankingFubini(t *testing.T) {
	want := []int64{1, 1, 3, 13, 75}
	for n, w := range want {
		count := int64(0)
		forEachPartialRanking(n, func(*ranking.PartialRanking) { count++ })
		if count != w {
			t.Errorf("enumerated %d bucket orders for n=%d, want %d", count, n, w)
		}
		if f, ok := ranking.Fubini(n); !ok || f != w {
			t.Errorf("Fubini(%d) = (%d,%v), want %d", n, f, ok, w)
		}
	}
}

func TestCountPairsAgreesWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(40)
		a := randrank.Partial(rng, n, 1+rng.Intn(6))
		b := randrank.Partial(rng, n, 1+rng.Intn(6))
		fast, err := CountPairs(a, b)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := CountPairsNaive(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if fast != slow {
			t.Fatalf("CountPairs mismatch for\na=%v\nb=%v\nfast=%+v\nslow=%+v", a, b, fast, slow)
		}
		if want := int64(n) * int64(n-1) / 2; fast.Total() != want {
			t.Fatalf("Total = %d, want %d", fast.Total(), want)
		}
	}
}

func TestCountPairsSymmetryRoles(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(20)
		a := randrank.Partial(rng, n, 3)
		b := randrank.Partial(rng, n, 3)
		ab, err := CountPairs(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := CountPairs(b, a)
		if err != nil {
			t.Fatal(err)
		}
		if ab.Concordant != ba.Concordant || ab.Discordant != ba.Discordant ||
			ab.TiedInBoth != ba.TiedInBoth ||
			ab.TiedOnlyInA != ba.TiedOnlyInB || ab.TiedOnlyInB != ba.TiedOnlyInA {
			t.Fatalf("role swap broken: ab=%+v ba=%+v", ab, ba)
		}
	}
}

func TestCountPairsIdentityCases(t *testing.T) {
	pr := ranking.MustFromBuckets(5, [][]int{{0, 1}, {2}, {3, 4}})
	pc, err := CountPairs(pr, pr)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Discordant != 0 || pc.TiedOnlyInA != 0 || pc.TiedOnlyInB != 0 {
		t.Errorf("self comparison has penalties: %+v", pc)
	}
	if pc.TiedInBoth != 2 { // {0,1} and {3,4}
		t.Errorf("TiedInBoth = %d, want 2", pc.TiedInBoth)
	}
	if pc.Concordant != 8 {
		t.Errorf("Concordant = %d, want 8", pc.Concordant)
	}

	rev := pr.Reverse()
	pc, err = CountPairs(pr, rev)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Concordant != 0 || pc.Discordant != 8 {
		t.Errorf("reverse comparison: %+v", pc)
	}
}

func TestCountPairsDomainMismatch(t *testing.T) {
	a := ranking.MustFromOrder([]int{0, 1})
	b := ranking.MustFromOrder([]int{0, 1, 2})
	if _, err := CountPairs(a, b); err == nil {
		t.Error("domain mismatch accepted")
	}
	if _, err := CountPairsNaive(a, b); err == nil {
		t.Error("naive domain mismatch accepted")
	}
}

// A partial ranking against one of its own refinements: no discordant pairs
// and nothing tied only in the refinement.
func TestCountPairsRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(20)
		coarse := randrank.Partial(rng, n, 5)
		fine := coarse.RefineBy(randrank.Full(rng, n))
		pc, err := CountPairs(coarse, fine)
		if err != nil {
			t.Fatal(err)
		}
		if pc.Discordant != 0 {
			t.Fatalf("refinement discordant with original: %+v", pc)
		}
		if pc.TiedOnlyInB != 0 {
			t.Fatalf("refinement has ties the original lacks: %+v", pc)
		}
	}
}

// The bucket-aware engine, the sort-based engine, and the quadratic
// reference agree on every input shape.
func TestCountPairsThreeEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(50)
		maxB := 1 + rng.Intn(10)
		a := randrank.Partial(rng, n, maxB)
		b := randrank.Partial(rng, n, maxB)
		fast, err := CountPairs(a, b)
		if err != nil {
			t.Fatal(err)
		}
		viaSort, err := countPairsViaSort(a, b)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := CountPairsNaive(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if fast != viaSort || fast != naive {
			t.Fatalf("engines disagree:\nbucketed=%+v\nsort=%+v\nnaive=%+v\na=%v\nb=%v",
				fast, viaSort, naive, a, b)
		}
	}
	// Degenerate shapes.
	for _, pair := range [][2]*ranking.PartialRanking{
		{ranking.MustFromBuckets(0, nil), ranking.MustFromBuckets(0, nil)},
		{ranking.MustFromBuckets(6, [][]int{{0, 1, 2, 3, 4, 5}}), ranking.MustFromOrder([]int{5, 4, 3, 2, 1, 0})},
		{ranking.MustFromOrder([]int{0, 1, 2}), ranking.MustFromBuckets(3, [][]int{{0, 1, 2}})},
	} {
		fast, _ := CountPairs(pair[0], pair[1])
		naive, _ := CountPairsNaive(pair[0], pair[1])
		if fast != naive {
			t.Fatalf("degenerate shape disagrees: %+v vs %+v", fast, naive)
		}
	}
	if _, err := countPairsViaSort(ranking.MustFromOrder([]int{0}), ranking.MustFromOrder([]int{0, 1})); err == nil {
		t.Error("sort engine accepted domain mismatch")
	}
}

// Large-domain smoke test: the metric stack handles n = 10^6 in seconds and
// exactly agrees across engines on a sampled invariant.
func TestLargeDomainSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-domain smoke test skipped with -short")
	}
	rng := rand.New(rand.NewSource(99))
	n := 1_000_000
	a := randrank.Partial(rng, n, 50)
	b := randrank.Partial(rng, n, 50)
	kp2, err := KProf2(a, b)
	if err != nil {
		t.Fatal(err)
	}
	fp2, _ := FProf2(a, b)
	kh, _ := KHaus(a, b)
	if !(kp2 <= fp2 && fp2 <= 2*kp2) {
		t.Fatalf("Eq. 5 violated at n=1e6: %d %d", kp2, fp2)
	}
	if !(kp2 <= 2*kh && 2*kh <= 2*kp2) {
		t.Fatalf("Eq. 6 violated at n=1e6: %d %d", kp2, kh)
	}
}
