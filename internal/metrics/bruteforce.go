package metrics

import (
	"repro/internal/ranking"
)

// fullRefinements materializes every full refinement of a partial ranking.
// The count is the product of bucket-size factorials, so callers must keep
// domains small; all uses are brute-force references.
func fullRefinements(pr *ranking.PartialRanking) []*ranking.PartialRanking {
	var out []*ranking.PartialRanking
	pr.ForEachFullRefinement(func(order []int) bool {
		out = append(out, ranking.MustFromOrder(order))
		return true
	})
	return out
}

// KHausBrute computes the Hausdorff-Kendall distance directly from the
// definition (Equation 3): the Hausdorff distance between the sets of full
// refinements of the two partial rankings under K. Exponential; reference
// implementation for Theorem 5 / Proposition 6.
func KHausBrute(a, b *ranking.PartialRanking) (int64, error) {
	if err := ranking.CheckSameDomain(a, b); err != nil {
		return 0, err
	}
	d := Hausdorff(fullRefinements(a), fullRefinements(b),
		func(x, y *ranking.PartialRanking) float64 {
			k, err := Kendall(x, y)
			if err != nil {
				panic(err) // unreachable: refinements are full and same-domain
			}
			return float64(k)
		})
	return int64(d), nil
}

// FHausBrute computes the Hausdorff-footrule distance directly from the
// definition (Equation 3). Exponential; reference for Theorem 5.
func FHausBrute(a, b *ranking.PartialRanking) (int64, error) {
	if err := ranking.CheckSameDomain(a, b); err != nil {
		return 0, err
	}
	d := Hausdorff(fullRefinements(a), fullRefinements(b),
		func(x, y *ranking.PartialRanking) float64 {
			f, err := Footrule(x, y)
			if err != nil {
				panic(err) // unreachable
			}
			return float64(f)
		})
	return int64(d), nil
}

// MinFootruleRefinement returns min over full refinements tau of F(sigma,
// tau) for a full ranking sigma and partial ranking tauBar, by brute force.
// Lemma 3 states the minimum is attained at tau = sigma*tauBar; the tests
// use this function to verify that characterization.
func MinFootruleRefinement(sigma, tauBar *ranking.PartialRanking) (int64, error) {
	if err := ranking.CheckSameDomain(sigma, tauBar); err != nil {
		return 0, err
	}
	if !sigma.IsFull() {
		return 0, errNotFull("MinFootruleRefinement")
	}
	best := int64(-1)
	var ferr error
	tauBar.ForEachFullRefinement(func(order []int) bool {
		tau := ranking.MustFromOrder(order)
		f, err := Footrule(sigma, tau)
		if err != nil {
			ferr = err
			return false
		}
		if best < 0 || f < best {
			best = f
		}
		return true
	})
	return best, ferr
}

// MinKendallRefinement is MinFootruleRefinement for the Kendall distance.
func MinKendallRefinement(sigma, tauBar *ranking.PartialRanking) (int64, error) {
	if err := ranking.CheckSameDomain(sigma, tauBar); err != nil {
		return 0, err
	}
	if !sigma.IsFull() {
		return 0, errNotFull("MinKendallRefinement")
	}
	best := int64(-1)
	var kerr error
	tauBar.ForEachFullRefinement(func(order []int) bool {
		tau := ranking.MustFromOrder(order)
		k, err := Kendall(sigma, tau)
		if err != nil {
			kerr = err
			return false
		}
		if best < 0 || k < best {
			best = k
		}
		return true
	})
	return best, kerr
}
