package metrics

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

// genTriple draws three bucket orders over one shared domain for
// property-based metric-axiom checks.
type genTriple struct {
	A, B, C *ranking.PartialRanking
}

func (genTriple) Generate(r *rand.Rand, size int) reflect.Value {
	maxN := size
	if maxN < 1 {
		maxN = 1
	}
	if maxN > 10 {
		maxN = 10
	}
	n := 1 + r.Intn(maxN)
	mk := func() *ranking.PartialRanking { return randrank.Partial(r, n, 1+r.Intn(4)) }
	return reflect.ValueOf(genTriple{mk(), mk(), mk()})
}

var quickCfg = &quick.Config{MaxCount: 250}

// All four metrics are symmetric, regular, and satisfy the triangle
// inequality on generated triples.
func TestQuickMetricAxioms(t *testing.T) {
	type metricFn struct {
		name string
		d    func(a, b *ranking.PartialRanking) (float64, error)
	}
	fns := []metricFn{
		{"KProf", KProf},
		{"FProf", FProf},
		{"KHaus", func(a, b *ranking.PartialRanking) (float64, error) {
			v, err := KHaus(a, b)
			return float64(v), err
		}},
		{"FHaus", func(a, b *ranking.PartialRanking) (float64, error) {
			v, err := FHaus(a, b)
			return float64(v), err
		}},
	}
	for _, m := range fns {
		m := m
		f := func(g genTriple) bool {
			ab, err := m.d(g.A, g.B)
			if err != nil {
				return false
			}
			ba, _ := m.d(g.B, g.A)
			ac, _ := m.d(g.A, g.C)
			cb, _ := m.d(g.C, g.B)
			if ab != ba {
				return false
			}
			if (ab == 0) != g.A.Equal(g.B) {
				return false
			}
			return ab <= ac+cb+1e-9
		}
		if err := quick.Check(f, quickCfg); err != nil {
			t.Errorf("%s axioms: %v", m.name, err)
		}
	}
}

// Theorem 7's three windows hold on every generated pair.
func TestQuickTheorem7Windows(t *testing.T) {
	f := func(g genTriple) bool {
		kp2, err := KProf2(g.A, g.B)
		if err != nil {
			return false
		}
		fp2, _ := FProf2(g.A, g.B)
		kh, _ := KHaus(g.A, g.B)
		fh, _ := FHaus(g.A, g.B)
		if !(kp2 <= fp2 && fp2 <= 2*kp2) {
			return false
		}
		if !(kh <= fh && fh <= 2*kh) {
			return false
		}
		return kp2 <= 2*kh && 2*kh <= 2*kp2
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Pair counts are conserved and role-symmetric on every generated pair.
func TestQuickPairCountInvariants(t *testing.T) {
	f := func(g genTriple) bool {
		ab, err := CountPairs(g.A, g.B)
		if err != nil {
			return false
		}
		ba, _ := CountPairs(g.B, g.A)
		n := int64(g.A.N())
		if ab.Total() != n*(n-1)/2 {
			return false
		}
		return ab.Concordant == ba.Concordant && ab.Discordant == ba.Discordant &&
			ab.TiedOnlyInA == ba.TiedOnlyInB && ab.TiedOnlyInB == ba.TiedOnlyInA &&
			ab.TiedInBoth == ba.TiedInBoth
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// K^(p) is monotone in p and sandwiched between K^(0) and KHaus-compatible
// quantities.
func TestQuickPenaltyMonotone(t *testing.T) {
	f := func(g genTriple, rawP, rawQ uint8) bool {
		p := float64(rawP%101) / 100
		q := float64(rawQ%101) / 100
		if p > q {
			p, q = q, p
		}
		dp, err := KWithPenalty(g.A, g.B, p)
		if err != nil {
			return false
		}
		dq, _ := KWithPenalty(g.A, g.B, q)
		return dp <= dq+1e-12
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Reversing both rankings preserves every metric; reversing one swaps
// concordant and discordant pairs.
func TestQuickReversalSymmetry(t *testing.T) {
	f := func(g genTriple) bool {
		kp, err := KProf(g.A, g.B)
		if err != nil {
			return false
		}
		kpRev, _ := KProf(g.A.Reverse(), g.B.Reverse())
		if kp != kpRev {
			return false
		}
		pc, _ := CountPairs(g.A, g.B)
		pcFlip, _ := CountPairs(g.A.Reverse(), g.B)
		return pc.Concordant == pcFlip.Discordant && pc.Discordant == pcFlip.Concordant &&
			pc.TiedInBoth == pcFlip.TiedInBoth
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// The Hausdorff distance dominates the profile distance pointwise and both
// vanish only together.
func TestQuickHausDominatesProfile(t *testing.T) {
	f := func(g genTriple) bool {
		kp, err := KProf(g.A, g.B)
		if err != nil {
			return false
		}
		kh, _ := KHaus(g.A, g.B)
		fp, _ := FProf(g.A, g.B)
		fh, _ := FHaus(g.A, g.B)
		return float64(kh) >= kp && float64(fh) >= fp
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
