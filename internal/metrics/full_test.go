package metrics

import (
	"math/rand"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

func TestKendallKnown(t *testing.T) {
	id := ranking.MustFromOrder([]int{0, 1, 2, 3})
	rev := ranking.MustFromOrder([]int{3, 2, 1, 0})
	if k, _ := Kendall(id, id); k != 0 {
		t.Errorf("K(id,id) = %d", k)
	}
	if k, _ := Kendall(id, rev); k != 6 {
		t.Errorf("K(id,rev) = %d, want 6", k)
	}
	swap := ranking.MustFromOrder([]int{1, 0, 2, 3})
	if k, _ := Kendall(id, swap); k != 1 {
		t.Errorf("K adjacent swap = %d, want 1", k)
	}
}

func TestKendallAgreesWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		a := randrank.Full(rng, n)
		b := randrank.Full(rng, n)
		fast, err := Kendall(a, b)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := KendallNaive(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if fast != slow {
			t.Fatalf("Kendall mismatch %d vs %d for %v %v", fast, slow, a, b)
		}
	}
}

func TestKendallRejectsTies(t *testing.T) {
	full := ranking.MustFromOrder([]int{0, 1, 2})
	tied := ranking.MustFromBuckets(3, [][]int{{0, 1}, {2}})
	if _, err := Kendall(full, tied); err == nil {
		t.Error("Kendall accepted ties")
	}
	if _, err := Kendall(tied, full); err == nil {
		t.Error("Kendall accepted ties (first arg)")
	}
	if _, err := KendallNaive(full, tied); err == nil {
		t.Error("KendallNaive accepted ties")
	}
	if _, err := Footrule(full, tied); err == nil {
		t.Error("Footrule accepted ties")
	}
}

func TestFootruleKnown(t *testing.T) {
	id := ranking.MustFromOrder([]int{0, 1, 2, 3})
	rev := ranking.MustFromOrder([]int{3, 2, 1, 0})
	if f, _ := Footrule(id, id); f != 0 {
		t.Errorf("F(id,id) = %d", f)
	}
	if f, _ := Footrule(id, rev); f != 8 {
		t.Errorf("F(id,rev) = %d, want 8", f)
	}
}

// Diaconis-Graham (Equation 1): K <= F <= 2K for all full rankings.
func TestDiaconisGraham(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(30)
		a := randrank.Full(rng, n)
		b := randrank.Full(rng, n)
		k, err := Kendall(a, b)
		if err != nil {
			t.Fatal(err)
		}
		f, err := Footrule(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !(k <= f && f <= 2*k) {
			t.Fatalf("Diaconis-Graham violated: K=%d F=%d for %v %v", k, f, a, b)
		}
	}
}

// The Kendall distance is a metric on full rankings: symmetric, regular,
// triangle inequality.
func TestKendallFootruleMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(10)
		a, b, c := randrank.Full(rng, n), randrank.Full(rng, n), randrank.Full(rng, n)
		kab, _ := Kendall(a, b)
		kba, _ := Kendall(b, a)
		if kab != kba {
			t.Fatalf("K not symmetric")
		}
		if (kab == 0) != a.Equal(b) {
			t.Fatalf("K regularity violated: K=%d equal=%v", kab, a.Equal(b))
		}
		kac, _ := Kendall(a, c)
		kcb, _ := Kendall(c, b)
		if kab > kac+kcb {
			t.Fatalf("K triangle violated: %d > %d + %d", kab, kac, kcb)
		}
		fab, _ := Footrule(a, b)
		fba, _ := Footrule(b, a)
		fac, _ := Footrule(a, c)
		fcb, _ := Footrule(c, b)
		if fab != fba || (fab == 0) != a.Equal(b) || fab > fac+fcb {
			t.Fatalf("F axioms violated: fab=%d fba=%d fac=%d fcb=%d", fab, fba, fac, fcb)
		}
	}
}

// Kendall distance equals the number of adjacent transpositions (bubble-sort
// exchanges) needed to convert one ranking into the other.
func TestKendallBubbleSortInterpretation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		a := randrank.Full(rng, n)
		b := randrank.Full(rng, n)
		k, _ := Kendall(a, b)
		// Bubble-sort a's order into b's order counting swaps.
		order := a.Order()
		swaps := int64(0)
		for {
			done := true
			for i := 0; i+1 < n; i++ {
				if b.Pos2(order[i]) > b.Pos2(order[i+1]) {
					order[i], order[i+1] = order[i+1], order[i]
					swaps++
					done = false
				}
			}
			if done {
				break
			}
		}
		if swaps != k {
			t.Fatalf("bubble sort took %d swaps, K=%d", swaps, k)
		}
	}
}

func TestKendallDomainMismatch(t *testing.T) {
	a := ranking.MustFromOrder([]int{0, 1})
	b := ranking.MustFromOrder([]int{0, 1, 2})
	if _, err := Kendall(a, b); err == nil {
		t.Error("domain mismatch accepted")
	}
	if _, err := Footrule(a, b); err == nil {
		t.Error("domain mismatch accepted")
	}
}

func TestL1(t *testing.T) {
	if got := L1([]float64{1, 2, 3}, []float64{3, 2, 0}); got != 5 {
		t.Errorf("L1 = %v, want 5", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("L1 length mismatch did not panic")
		}
	}()
	L1([]float64{1}, []float64{1, 2})
}
