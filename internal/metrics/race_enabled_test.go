//go:build race

package metrics

// raceEnabled reports whether the race detector instruments this build; the
// allocation-regression tests skip themselves under it.
const raceEnabled = true
