package metrics

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/guard"
	"repro/internal/randrank"
	"repro/internal/ranking"
)

// PairIndex must agree with explicit row-major enumeration of the upper
// triangle for every cell, across a range of ensemble sizes up to m=100.
func TestPairIndexRoundTrip(t *testing.T) {
	for _, m := range []int{2, 3, 5, 10, 37, 100} {
		counter := 0
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				if got := PairIndex(m, i, j); got != counter {
					t.Fatalf("m=%d: PairIndex(%d,%d) = %d, want %d", m, i, j, got, counter)
				}
				counter++
			}
		}
		if want := m * (m - 1) / 2; counter != want {
			t.Fatalf("m=%d: enumerated %d cells, want %d", m, counter, want)
		}
	}
}

// forEachPairFrom must compute exactly the complement of the done bitmap: no
// done cell recomputed, no pending cell skipped, nothing twice.
func TestForEachPairFromSkipsDone(t *testing.T) {
	const m = 16
	total := m * (m - 1) / 2
	done := guard.NewBitmap(total)
	rng := rand.New(rand.NewSource(13))
	for idx := 0; idx < total; idx++ {
		if rng.Intn(2) == 0 {
			done.Set(idx)
		}
	}
	var mu sync.Mutex
	computed := make(map[int]int)
	err := forEachPairFrom(m, "test_skip", done, func(_ *Workspace, i, j int) error {
		mu.Lock()
		computed[PairIndex(m, i, j)]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < total; idx++ {
		n := computed[idx]
		if done.Get(idx) && n != 0 {
			t.Errorf("done cell %d recomputed %d times", idx, n)
		}
		if !done.Get(idx) && n != 1 {
			t.Errorf("pending cell %d computed %d times, want 1", idx, n)
		}
	}
}

// poisonSweep aborts a DistanceMatrixWith over in by failing every pair that
// touches index poison, returning the partial matrix and its *SweepError.
func poisonSweep(t *testing.T, in []*ranking.PartialRanking, poison int) ([][]float64, *SweepError) {
	t.Helper()
	boom := errors.New("poisoned pair")
	mat, err := DistanceMatrixWith(in, func(ws *Workspace, a, b *ranking.PartialRanking) (float64, error) {
		if a == in[poison] || b == in[poison] {
			return 0, boom
		}
		return KProfWS(ws, a, b)
	})
	if !errors.Is(err, boom) {
		t.Fatalf("poisoned sweep err = %v, want boom", err)
	}
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *SweepError", err)
	}
	return mat, se
}

// Regression for the silent-zero resume bug: a SweepError whose Completed
// bitmap outlives its matrix (prev truncated, rows shortened, or nil) must
// not copy missing cells through as zeros — every unrecoverable cell is
// recomputed, and the result matches an uninterrupted sweep exactly.
func TestResumeDistanceMatrixTruncatedPrev(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const m = 20
	var in []*ranking.PartialRanking
	for i := 0; i < m; i++ {
		in = append(in, randrank.Partial(rng, 12, 3))
	}
	want, err := DistanceMatrixWith(in, KProfWS)
	if err != nil {
		t.Fatal(err)
	}
	check := func(t *testing.T, got [][]float64, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("[%d][%d] = %v, want %v", i, j, got[i][j], want[i][j])
				}
			}
		}
	}
	t.Run("truncated_rows", func(t *testing.T) {
		mat, se := poisonSweep(t, in, m-1)
		// Drop trailing rows and shorten an early one: cells the bitmap still
		// claims as complete become unrecoverable.
		trunc := make([][]float64, m-6)
		for i := range trunc {
			trunc[i] = mat[i]
		}
		trunc[0] = trunc[0][:3]
		got, err := ResumeDistanceMatrix(in, trunc, se, KProfWS)
		check(t, got, err)
	})
	t.Run("nil_prev", func(t *testing.T) {
		_, se := poisonSweep(t, in, m-1)
		got, err := ResumeDistanceMatrix(in, nil, se, KProfWS)
		check(t, got, err)
	})
	t.Run("intact_prev_skips_completed", func(t *testing.T) {
		mat, se := poisonSweep(t, in, m-1)
		calls := make(map[int]bool)
		var mu sync.Mutex
		got, err := ResumeDistanceMatrix(in, mat, se, func(ws *Workspace, a, b *ranking.PartialRanking) (float64, error) {
			var i, j int
			for idx, r := range in {
				if r == a {
					i = idx
				}
				if r == b {
					j = idx
				}
			}
			mu.Lock()
			calls[PairIndex(m, i, j)] = true
			mu.Unlock()
			return KProfWS(ws, a, b)
		})
		check(t, got, err)
		for idx := range calls {
			if se.Completed.Get(idx) {
				t.Errorf("cell %d recomputed despite intact prev value", idx)
			}
		}
		if len(calls) == 0 {
			t.Error("resume recomputed nothing; poison never aborted any cell")
		}
	})
	t.Run("recover_from_lower_triangle", func(t *testing.T) {
		mat, se := poisonSweep(t, in, m-1)
		// Cut every row down to its lower-triangle prefix: cell (i, j), i < j,
		// is now out of bounds in row i, and its value survives only mirrored
		// at prev[j][i], which the resume must still recover.
		for i := range mat {
			mat[i] = mat[i][:i]
		}
		calls := 0
		var mu sync.Mutex
		got, err := ResumeDistanceMatrix(in, mat, se, func(ws *Workspace, a, b *ranking.PartialRanking) (float64, error) {
			mu.Lock()
			calls++
			mu.Unlock()
			return KProfWS(ws, a, b)
		})
		check(t, got, err)
		if completed := se.Completed.Count(); calls != m*(m-1)/2-completed {
			t.Errorf("recomputed %d cells, want exactly the %d incomplete ones",
				calls, m*(m-1)/2-completed)
		}
	})
	t.Run("non_sweep_error_recomputes_fully", func(t *testing.T) {
		got, err := ResumeDistanceMatrix(in, nil, errors.New("opaque failure"), KProfWS)
		check(t, got, err)
	})
}
