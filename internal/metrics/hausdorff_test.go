package metrics

import (
	"math/rand"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

// Theorem 5 / Proposition 6, exhaustively for n <= 4: the refinement
// construction, the counting formula, and the brute-force definition of the
// Hausdorff metrics all agree.
func TestHausdorffCharacterizationExhaustive(t *testing.T) {
	for n := 0; n <= 4; n++ {
		var all []*ranking.PartialRanking
		forEachPartialRanking(n, func(pr *ranking.PartialRanking) { all = append(all, pr) })
		for _, a := range all {
			for _, b := range all {
				kBrute, err := KHausBrute(a, b)
				if err != nil {
					t.Fatal(err)
				}
				kProp6, err := KHaus(a, b)
				if err != nil {
					t.Fatal(err)
				}
				kThm5, err := KHausViaRefinement(a, b)
				if err != nil {
					t.Fatal(err)
				}
				if kBrute != kProp6 || kBrute != kThm5 {
					t.Fatalf("KHaus mismatch: brute=%d prop6=%d thm5=%d\na=%v\nb=%v",
						kBrute, kProp6, kThm5, a, b)
				}
				fBrute, err := FHausBrute(a, b)
				if err != nil {
					t.Fatal(err)
				}
				fThm5, err := FHaus(a, b)
				if err != nil {
					t.Fatal(err)
				}
				if fBrute != fThm5 {
					t.Fatalf("FHaus mismatch: brute=%d thm5=%d\na=%v\nb=%v", fBrute, fThm5, a, b)
				}
			}
		}
	}
}

// The same characterizations on random larger rankings with small buckets
// (keeping the refinement count tractable for the brute force).
func TestHausdorffCharacterizationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := 5 + rng.Intn(4)
		a := randrank.Partial(rng, n, 3)
		b := randrank.Partial(rng, n, 3)
		kBrute, _ := KHausBrute(a, b)
		kProp6, _ := KHaus(a, b)
		kThm5, _ := KHausViaRefinement(a, b)
		fBrute, _ := FHausBrute(a, b)
		fThm5, _ := FHaus(a, b)
		if kBrute != kProp6 || kBrute != kThm5 {
			t.Fatalf("KHaus mismatch: brute=%d prop6=%d thm5=%d\na=%v\nb=%v", kBrute, kProp6, kThm5, a, b)
		}
		if fBrute != fThm5 {
			t.Fatalf("FHaus mismatch: brute=%d thm5=%d\na=%v\nb=%v", fBrute, fThm5, a, b)
		}
	}
}

// Lemma 3: over all full refinements tau of tauBar, F(sigma, tau) and
// K(sigma, tau) are minimized at tau = sigma * tauBar.
func TestLemma3MinimizingRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(7)
		sigma := randrank.Full(rng, n)
		tauBar := randrank.Partial(rng, n, 3)
		opt := tauBar.RefineBy(sigma) // sigma * tauBar

		fOpt, err := Footrule(sigma, opt)
		if err != nil {
			t.Fatal(err)
		}
		fMin, err := MinFootruleRefinement(sigma, tauBar)
		if err != nil {
			t.Fatal(err)
		}
		if fOpt != fMin {
			t.Fatalf("Lemma 3 (F) violated: F(sigma, sigma*tau)=%d, min=%d", fOpt, fMin)
		}

		kOpt, err := Kendall(sigma, opt)
		if err != nil {
			t.Fatal(err)
		}
		kMin, err := MinKendallRefinement(sigma, tauBar)
		if err != nil {
			t.Fatal(err)
		}
		if kOpt != kMin {
			t.Fatalf("Lemma 3 (K) violated: K(sigma, sigma*tau)=%d, min=%d", kOpt, kMin)
		}
	}
}

// Theorem 20 / Equation 4: KHaus <= FHaus <= 2*KHaus.
func TestEquation4KHausFHaus(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(30)
		a := randrank.Partial(rng, n, 5)
		b := randrank.Partial(rng, n, 5)
		kh, _ := KHaus(a, b)
		fh, _ := FHaus(a, b)
		if !(kh <= fh && fh <= 2*kh) {
			t.Fatalf("Eq. 4 violated: KHaus=%d FHaus=%d\na=%v\nb=%v", kh, fh, a, b)
		}
	}
}

// Lemma 25 / Equation 6: Kprof <= KHaus <= 2*Kprof.
func TestEquation6KprofKHaus(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(30)
		a := randrank.Partial(rng, n, 5)
		b := randrank.Partial(rng, n, 5)
		kp2, _ := KProf2(a, b)
		kh, _ := KHaus(a, b)
		if !(kp2 <= 2*kh && 2*kh <= 2*kp2) {
			t.Fatalf("Eq. 6 violated: Kprof=%v KHaus=%d\na=%v\nb=%v", float64(kp2)/2, kh, a, b)
		}
	}
}

// KHaus and FHaus are metrics: symmetry, regularity, triangle inequality.
func TestHausdorffMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(8)
		a := randrank.Partial(rng, n, 4)
		b := randrank.Partial(rng, n, 4)
		c := randrank.Partial(rng, n, 4)

		kab, _ := KHaus(a, b)
		kba, _ := KHaus(b, a)
		kac, _ := KHaus(a, c)
		kcb, _ := KHaus(c, b)
		if kab != kba || (kab == 0) != a.Equal(b) || kab > kac+kcb {
			t.Fatalf("KHaus axioms violated: ab=%d ba=%d ac=%d cb=%d\na=%v\nb=%v\nc=%v",
				kab, kba, kac, kcb, a, b, c)
		}

		fab, _ := FHaus(a, b)
		fba, _ := FHaus(b, a)
		fac, _ := FHaus(a, c)
		fcb, _ := FHaus(c, b)
		if fab != fba || (fab == 0) != a.Equal(b) || fab > fac+fcb {
			t.Fatalf("FHaus axioms violated: ab=%d ba=%d ac=%d cb=%d\na=%v\nb=%v\nc=%v",
				fab, fba, fac, fcb, a, b, c)
		}
	}
}

// On full rankings the Hausdorff metrics reduce to K and F.
func TestHausdorffReducesOnFullRankings(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(20)
		a := randrank.Full(rng, n)
		b := randrank.Full(rng, n)
		kh, _ := KHaus(a, b)
		k, _ := Kendall(a, b)
		fh, _ := FHaus(a, b)
		f, _ := Footrule(a, b)
		if kh != k || fh != f {
			t.Fatalf("Hausdorff reduction failed: KHaus=%d K=%d FHaus=%d F=%d", kh, k, fh, f)
		}
	}
}

func TestHausdorffGeneric(t *testing.T) {
	abs := func(a, b float64) float64 {
		if a > b {
			return a - b
		}
		return b - a
	}
	// A = {0, 1}, B = {10}: every a is within 10 of B, 10 is within 9 of A.
	if got := Hausdorff([]float64{0, 1}, []float64{10}, abs); got != 10 {
		t.Errorf("Hausdorff = %v, want 10", got)
	}
	if got := Hausdorff([]float64{5}, []float64{5}, abs); got != 0 {
		t.Errorf("Hausdorff identical = %v, want 0", got)
	}
	// Asymmetric coverage: A inside B's hull but B spread out.
	if got := Hausdorff([]float64{5}, []float64{0, 10}, abs); got != 5 {
		t.Errorf("Hausdorff = %v, want 5", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Hausdorff of empty set did not panic")
		}
	}()
	Hausdorff(nil, []float64{1}, abs)
}

func TestHausdorffDomainMismatch(t *testing.T) {
	a := ranking.MustFromOrder([]int{0, 1})
	b := ranking.MustFromOrder([]int{0, 1, 2})
	for name, fn := range map[string]func(x, y *ranking.PartialRanking) error{
		"KHaus":   func(x, y *ranking.PartialRanking) error { _, err := KHaus(x, y); return err },
		"FHaus":   func(x, y *ranking.PartialRanking) error { _, err := FHaus(x, y); return err },
		"KHausVR": func(x, y *ranking.PartialRanking) error { _, err := KHausViaRefinement(x, y); return err },
		"KBrute":  func(x, y *ranking.PartialRanking) error { _, err := KHausBrute(x, y); return err },
		"FBrute":  func(x, y *ranking.PartialRanking) error { _, err := FHausBrute(x, y); return err },
	} {
		if fn(a, b) == nil {
			t.Errorf("%s accepted domain mismatch", name)
		}
	}
}

// Lemma 4: over all full refinements sigmaHat of sigma, the quantity
// F(sigmaHat, sigmaHat*tau) — and likewise K — is maximized at
// sigmaHat = rho*tauR*sigma, for any full ranking rho.
func TestLemma4MaximizingRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(7)
		sigma := randrank.Partial(rng, n, 3)
		tau := randrank.Partial(rng, n, 3)
		rho := randrank.Full(rng, n)

		// The claimed maximizer.
		opt := sigma.RefineBy(tau.Reverse()).RefineBy(rho) // rho*tauR*sigma
		fOpt, err := Footrule(opt, tau.RefineBy(opt))
		if err != nil {
			t.Fatal(err)
		}
		kOpt, err := Kendall(opt, tau.RefineBy(opt))
		if err != nil {
			t.Fatal(err)
		}

		// Brute force over all full refinements of sigma.
		fMax, kMax := int64(-1), int64(-1)
		sigma.ForEachFullRefinement(func(order []int) bool {
			sh := ranking.MustFromOrder(order)
			f, err := Footrule(sh, tau.RefineBy(sh))
			if err != nil {
				t.Fatal(err)
			}
			k, err := Kendall(sh, tau.RefineBy(sh))
			if err != nil {
				t.Fatal(err)
			}
			if f > fMax {
				fMax = f
			}
			if k > kMax {
				kMax = k
			}
			return true
		})
		if fOpt != fMax {
			t.Fatalf("Lemma 4 (F) violated: at maximizer %d, true max %d\nsigma=%v\ntau=%v\nrho=%v",
				fOpt, fMax, sigma, tau, rho)
		}
		if kOpt != kMax {
			t.Fatalf("Lemma 4 (K) violated: at maximizer %d, true max %d\nsigma=%v\ntau=%v\nrho=%v",
				kOpt, kMax, sigma, tau, rho)
		}
	}
}
