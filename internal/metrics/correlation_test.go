package metrics

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

func TestTauEndpoints(t *testing.T) {
	id := ranking.MustFromOrder([]int{0, 1, 2, 3, 4})
	rev := id.Reverse()
	if v, _ := KendallTauA(id, id); v != 1 {
		t.Errorf("tau-a(id,id) = %v", v)
	}
	if v, _ := KendallTauA(id, rev); v != -1 {
		t.Errorf("tau-a(id,rev) = %v", v)
	}
	if v, _ := KendallTauB(id, id); v != 1 {
		t.Errorf("tau-b(id,id) = %v", v)
	}
	if v, _ := KendallTauB(id, rev); v != -1 {
		t.Errorf("tau-b(id,rev) = %v", v)
	}
	// tau-b is 1 on identical bucket orders even with ties; tau-a is not.
	tied := ranking.MustFromBuckets(4, [][]int{{0, 1}, {2}, {3}})
	if v, _ := KendallTauB(tied, tied); v != 1 {
		t.Errorf("tau-b(tied,tied) = %v, want 1", v)
	}
	if v, _ := KendallTauA(tied, tied); v >= 1 {
		t.Errorf("tau-a(tied,tied) = %v, want < 1 (tie dilution)", v)
	}
}

func TestTauAgreeOnFullRankings(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(20)
		a := randrank.Full(rng, n)
		b := randrank.Full(rng, n)
		ta, err := KendallTauA(a, b)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := KendallTauB(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ta-tb) > 1e-12 {
			t.Fatalf("tau-a %v != tau-b %v without ties", ta, tb)
		}
		// Closed form: tau = 1 - 4K/(n(n-1)).
		k, _ := Kendall(a, b)
		want := 1 - 4*float64(k)/float64(n*(n-1))
		if math.Abs(ta-want) > 1e-12 {
			t.Fatalf("tau-a %v != closed form %v", ta, want)
		}
	}
}

func TestTauBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(15)
		a := randrank.Partial(rng, n, 4)
		b := randrank.Partial(rng, n, 4)
		for name, fn := range map[string]func(x, y *ranking.PartialRanking) (float64, error){
			"tau-a": KendallTauA, "tau-b": KendallTauB, "rho": SpearmanRho,
		} {
			v, err := fn(a, b)
			if errors.Is(err, ErrCorrelationUndefined) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if v < -1-1e-9 || v > 1+1e-9 {
				t.Fatalf("%s out of range: %v", name, v)
			}
		}
	}
}

func TestCorrelationUndefined(t *testing.T) {
	all := ranking.MustFromBuckets(3, [][]int{{0, 1, 2}})
	full := ranking.MustFromOrder([]int{0, 1, 2})
	if _, err := KendallTauB(all, full); !errors.Is(err, ErrCorrelationUndefined) {
		t.Errorf("tau-b vs single bucket: %v", err)
	}
	if _, err := SpearmanRho(all, full); !errors.Is(err, ErrCorrelationUndefined) {
		t.Errorf("rho vs single bucket: %v", err)
	}
	empty := ranking.MustFromBuckets(0, nil)
	if _, err := KendallTauA(empty, empty); !errors.Is(err, ErrCorrelationUndefined) {
		t.Errorf("tau-a on empty domain: %v", err)
	}
	if _, err := SpearmanRho(empty, empty); !errors.Is(err, ErrCorrelationUndefined) {
		t.Errorf("rho on empty domain: %v", err)
	}
}

func TestNormalizedMetricsRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(20)
		a := randrank.Partial(rng, n, 4)
		b := randrank.Partial(rng, n, 4)
		nk, err := NormalizedKProf(a, b)
		if err != nil {
			t.Fatal(err)
		}
		nf, err := NormalizedFProf(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if nk < 0 || nk > 1 || nf < 0 || nf > 1 {
			t.Fatalf("normalized metrics out of [0,1]: K=%v F=%v", nk, nf)
		}
		if a.Equal(b) && (nk != 0 || nf != 0) {
			t.Fatalf("normalized self-distance nonzero")
		}
	}
	// Extremes: full vs reverse hits 1 for both.
	id := ranking.MustFromOrder([]int{0, 1, 2, 3})
	if nk, _ := NormalizedKProf(id, id.Reverse()); nk != 1 {
		t.Errorf("NormalizedKProf(id,rev) = %v, want 1", nk)
	}
	if nf, _ := NormalizedFProf(id, id.Reverse()); nf != 1 {
		t.Errorf("NormalizedFProf(id,rev) = %v, want 1", nf)
	}
}

func TestSpearmanRhoClosedFormOnFull(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(20)
		a := randrank.Full(rng, n)
		b := randrank.Full(rng, n)
		rho, err := SpearmanRho(a, b)
		if err != nil {
			t.Fatal(err)
		}
		// rho = 1 - 6*sum d^2 / (n(n^2-1)) for permutations.
		var sumD2 float64
		for e := 0; e < n; e++ {
			d := a.Pos(e) - b.Pos(e)
			sumD2 += d * d
		}
		want := 1 - 6*sumD2/float64(n*(n*n-1))
		if math.Abs(rho-want) > 1e-9 {
			t.Fatalf("rho %v != closed form %v", rho, want)
		}
	}
}

// tau-b and gamma agree in sign and order: both are (C-D) over different
// normalizations, so gamma's magnitude dominates tau-b's.
func TestTauBGammaRelationship(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(15)
		a := randrank.Partial(rng, n, 4)
		b := randrank.Partial(rng, n, 4)
		tb, err1 := KendallTauB(a, b)
		g, err2 := GoodmanKruskalGamma(a, b)
		if err1 != nil || err2 != nil {
			continue
		}
		if math.Abs(g) < math.Abs(tb)-1e-9 {
			t.Fatalf("|gamma| %v < |tau-b| %v", g, tb)
		}
		if g*tb < 0 {
			t.Fatalf("gamma %v and tau-b %v disagree in sign", g, tb)
		}
	}
}
