package metrics

import (
	"testing"

	"repro/internal/ranking"
)

// rankingFromBytes maps a byte string onto a bucket order with common ties.
func rankingFromBytes(data []byte) *ranking.PartialRanking {
	n := len(data)
	groups := map[byte][]int{}
	var labels []byte
	for i, b := range data {
		lbl := b % 7
		if _, ok := groups[lbl]; !ok {
			labels = append(labels, lbl)
		}
		groups[lbl] = append(groups[lbl], i)
	}
	for i := 1; i < len(labels); i++ {
		for j := i; j > 0 && labels[j] < labels[j-1]; j-- {
			labels[j], labels[j-1] = labels[j-1], labels[j]
		}
	}
	buckets := make([][]int, 0, len(labels))
	for _, l := range labels {
		buckets = append(buckets, groups[l])
	}
	return ranking.MustFromBuckets(n, buckets)
}

// FuzzMetricInvariants drives the full metric stack with fuzz-shaped
// ranking pairs: no panics, symmetry, and every Theorem 7 window.
func FuzzMetricInvariants(f *testing.F) {
	f.Add([]byte{0, 1, 2}, []byte{2, 1, 0})
	f.Add([]byte{0, 0, 0, 0}, []byte{1, 2, 3, 4})
	f.Add([]byte{}, []byte{})
	f.Add([]byte{9}, []byte{3})
	f.Fuzz(func(t *testing.T, da, db []byte) {
		if len(da) != len(db) {
			// Same-length prefix keeps the domains aligned.
			if len(da) > len(db) {
				da = da[:len(db)]
			} else {
				db = db[:len(da)]
			}
		}
		if len(da) > 64 {
			da, db = da[:64], db[:64]
		}
		a := rankingFromBytes(da)
		b := rankingFromBytes(db)

		kp2, err := KProf2(a, b)
		if err != nil {
			t.Fatal(err)
		}
		fp2, _ := FProf2(a, b)
		kh, _ := KHaus(a, b)
		fh, _ := FHaus(a, b)
		if !(kp2 <= fp2 && fp2 <= 2*kp2) {
			t.Fatalf("Eq. 5 violated: %d %d", kp2, fp2)
		}
		if !(kh <= fh && fh <= 2*kh) {
			t.Fatalf("Eq. 4 violated: %d %d", kh, fh)
		}
		if !(kp2 <= 2*kh && 2*kh <= 2*kp2) {
			t.Fatalf("Eq. 6 violated: %d %d", kp2, kh)
		}
		kpBA, _ := KProf2(b, a)
		if kpBA != kp2 {
			t.Fatalf("KProf asymmetric: %d vs %d", kp2, kpBA)
		}
		fast, _ := CountPairs(a, b)
		slow, _ := CountPairsNaive(a, b)
		if fast != slow {
			t.Fatalf("CountPairs mismatch: %+v vs %+v", fast, slow)
		}
	})
}

// FuzzReflection drives the Lemma 21/23 identities with fuzz-shaped pairs.
func FuzzReflection(f *testing.F) {
	f.Add([]byte{1, 1, 2, 3}, []byte{4, 4, 4, 0})
	f.Add([]byte{0}, []byte{0})
	f.Fuzz(func(t *testing.T, da, db []byte) {
		if len(da) > len(db) {
			da = da[:len(db)]
		} else {
			db = db[:len(da)]
		}
		if len(da) > 24 || len(da) == 0 {
			return
		}
		sigma := rankingFromBytes(da)
		tau := rankingFromBytes(db)
		kvr, err := KProfViaReflection(sigma, tau)
		if err != nil {
			t.Fatal(err)
		}
		kp, _ := KProf(sigma, tau)
		if kvr != kp {
			t.Fatalf("Lemma 21 violated: %v vs %v", kvr, kp)
		}
		fvr, err := FProfViaReflection(sigma, tau)
		if err != nil {
			t.Fatal(err)
		}
		fp, _ := FProf(sigma, tau)
		if fvr != fp {
			t.Fatalf("Lemma 22 violated: %v vs %v", fvr, fp)
		}
	})
}
