package metrics

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/randrank"
	"repro/internal/ranking"
)

// dupHeavyEnsemble draws `distinct` Mallows voters and inflates them to m
// rankings by cloning: the duplicates are distinct structs with equal
// content, so cache hits must come from fingerprint equality, never pointer
// identity.
func dupHeavyEnsemble(rng *rand.Rand, n, distinct, m int) []*ranking.PartialRanking {
	base, _ := randrank.MallowsEnsemble(rng, n, distinct, 1.0)
	out := make([]*ranking.PartialRanking, m)
	for i := range out {
		out[i] = base[rng.Intn(distinct)].Clone()
	}
	return out
}

// Cached engines must be bit-for-bit identical to their uncached
// counterparts across all four paper metrics, and repeat sweeps must be
// served from the cache. Run under -race in CI: the matrix sweep probes one
// shared cache from GOMAXPROCS workers.
func TestCachedMatrixMatchesUncached(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	in := dupHeavyEnsemble(rng, 18, 4, 28)
	cases := []struct {
		name     string
		uncached DistanceWS
		cached   func(*cache.Cache) DistanceWS
	}{
		{"kprof", KProfWS, CachedKProf},
		{"fprof", FProfWS, CachedFProf},
		{"khaus", KHausWS, CachedKHaus},
		{"fhaus", FHausWS, CachedFHaus},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := DistanceMatrixWith(in, tc.uncached)
			if err != nil {
				t.Fatal(err)
			}
			c := cache.New(4096)
			d := tc.cached(c)
			for pass := 0; pass < 2; pass++ {
				got, err := DistanceMatrixWith(in, d)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					for j := range want[i] {
						if got[i][j] != want[i][j] {
							t.Fatalf("pass %d: [%d][%d] = %v, want %v", pass, i, j, got[i][j], want[i][j])
						}
					}
				}
			}
			st := c.Stats()
			if st.Hits == 0 {
				t.Errorf("duplicate-heavy sweep recorded no cache hits: %+v", st)
			}
			// Only 4 distinct rankings exist, so at most C(4,2) cross pairs plus
			// 4 equal-content pairs (two clones of one base at different matrix
			// indices) = 10 distinct keys can ever miss; everything else must hit.
			if st.Inserts > 10 {
				t.Errorf("inserted %d values for <= 10 distinct pairs", st.Inserts)
			}
		})
	}
}

// A single Cached wrapper serves both orientations of a pair from one entry,
// and values are exactly the kernel's.
func TestCachedSymmetricOrientation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := cache.New(128)
	d := CachedKProf(c)
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	for trial := 0; trial < 50; trial++ {
		a := randrank.Partial(rng, 12, 3)
		b := randrank.Partial(rng, 12, 3)
		want, err := KProfWS(ws, a, b)
		if err != nil {
			t.Fatal(err)
		}
		ab, err := d(ws, a, b)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := d(ws, b, a)
		if err != nil {
			t.Fatal(err)
		}
		if ab != want || ba != want {
			t.Fatalf("trial %d: cached %v/%v, want %v", trial, ab, ba, want)
		}
	}
	st := c.Stats()
	// The reversed orientation of every pair must have hit its canonical key.
	if st.Hits < 50 {
		t.Errorf("hits = %d, want >= 50 (one per reversed probe)", st.Hits)
	}
}

// Distinct metric IDs sharing one cache must never serve each other's values.
func TestCachedMetricIDsIsolated(t *testing.T) {
	c := cache.New(128)
	kprof := CachedKProf(c)
	fprof := CachedFProf(c)
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	a := ranking.MustFromOrder([]int{0, 1, 2, 3})
	b := a.Reverse()
	kWant, _ := KProf(a, b)
	fWant, _ := FProf(a, b)
	if kWant == fWant {
		t.Fatal("test pair does not distinguish the metrics")
	}
	if got, _ := kprof(ws, a, b); got != kWant {
		t.Errorf("kprof = %v, want %v", got, kWant)
	}
	if got, _ := fprof(ws, a, b); got != fWant {
		t.Errorf("fprof after kprof primed the cache = %v, want %v", got, fWant)
	}
}

// Errors pass through uncached: nothing is inserted, and a later success is
// computed fresh.
func TestCachedErrorNotMemoized(t *testing.T) {
	c := cache.New(128)
	boom := errors.New("boom")
	fail := true
	d := Cached(c, 99, func(ws *Workspace, a, b *ranking.PartialRanking) (float64, error) {
		if fail {
			return 0, boom
		}
		return 7, nil
	})
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	a := ranking.MustFromOrder([]int{0, 1})
	b := ranking.MustFromOrder([]int{1, 0})
	if _, err := d(ws, a, b); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Error("failed compute left an entry behind")
	}
	fail = false
	if v, err := d(ws, a, b); err != nil || v != 7 {
		t.Errorf("recovered compute = %v, %v, want 7", v, err)
	}
}
