package metrics

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/guard"
	"repro/internal/randrank"
	"repro/internal/ranking"
)

func chaosEnsemble(t *testing.T, seed int64, m int) []*ranking.PartialRanking {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	in := make([]*ranking.PartialRanking, 0, m)
	for i := 0; i < m; i++ {
		in = append(in, randrank.Partial(rng, 12, 4))
	}
	return in
}

// indexOf recovers the ensemble indices of a distance call's arguments.
func indexOf(in []*ranking.PartialRanking, a, b *ranking.PartialRanking) (int, int) {
	i, j := -1, -1
	for idx, r := range in {
		if r == a {
			i = idx
		}
		if r == b {
			j = idx
		}
	}
	return i, j
}

func TestPairIndexBijection(t *testing.T) {
	for _, m := range []int{0, 1, 2, 3, 7, 24} {
		total := m * (m - 1) / 2
		seen := make([]bool, total)
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				idx := PairIndex(m, i, j)
				if idx < 0 || idx >= total {
					t.Fatalf("m=%d: PairIndex(%d,%d) = %d out of [0,%d)", m, i, j, idx, total)
				}
				if seen[idx] {
					t.Fatalf("m=%d: PairIndex(%d,%d) = %d collides", m, i, j, idx)
				}
				seen[idx] = true
			}
		}
	}
}

// An injected panic in one cell must surface as a *guard.PanicError inside
// the *SweepError — never crash the process, deadlock the pool, or lose the
// completed-cell accounting.
func TestSweepContainsInjectedPanic(t *testing.T) {
	const m = 16
	in := chaosEnsemble(t, 21, m)
	recoveredBefore := guard.PanicsRecovered()
	var panicked atomic.Bool
	mat, err := DistanceMatrixWith(in, func(ws *Workspace, a, b *ranking.PartialRanking) (float64, error) {
		if i, j := indexOf(in, a, b); i == 3 && j == 11 && !panicked.Swap(true) {
			panic("injected cell failure")
		}
		return KProfWS(ws, a, b)
	})
	if err == nil {
		t.Fatal("sweep over a panicking cell succeeded")
	}
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *SweepError", err)
	}
	pe, ok := guard.Recovered(err)
	if !ok {
		t.Fatalf("sweep error does not wrap a *guard.PanicError: %v", err)
	}
	if pe.Value != "injected cell failure" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error carries no stack")
	}
	if guard.PanicsRecovered() <= recoveredBefore {
		t.Error("panic recovery telemetry did not advance")
	}
	total := m * (m - 1) / 2
	if se.M != m || se.Completed.Len() != total {
		t.Fatalf("completion state sized %d over m=%d, want %d over %d", se.Completed.Len(), se.M, total, m)
	}
	// The panicking cell is attempted but never completed: completed +
	// skipped + failed-attempts must cover the triangle exactly.
	failedAttempts := total - se.Completed.Count() - int(se.SkippedCells)
	if failedAttempts < 1 {
		t.Errorf("accounting: %d completed + %d skipped leaves %d failed attempts, want >= 1",
			se.Completed.Count(), se.SkippedCells, failedAttempts)
	}
	// Every completed bit corresponds to a correct, symmetric matrix cell.
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if !se.Completed.Get(PairIndex(m, i, j)) {
				continue
			}
			want, _ := KProf(in[i], in[j])
			if mat[i][j] != want || mat[j][i] != want {
				t.Errorf("completed cell [%d][%d] = %v/%v, want %v", i, j, mat[i][j], mat[j][i], want)
			}
		}
	}
}

// ResumeDistanceMatrix computes exactly the cells the interrupted sweep left
// unfinished, and the final matrix matches an uninterrupted sweep.
func TestResumeComputesExactlyIncompleteCells(t *testing.T) {
	const m = 20
	in := chaosEnsemble(t, 33, m)
	want, err := DistanceMatrixWith(in, KProfWS)
	if err != nil {
		t.Fatal(err)
	}
	var panicked atomic.Bool
	mat, err := DistanceMatrixWith(in, func(ws *Workspace, a, b *ranking.PartialRanking) (float64, error) {
		if i, j := indexOf(in, a, b); i == 5 && j == 6 && !panicked.Swap(true) {
			panic("first pass dies here")
		}
		return KProfWS(ws, a, b)
	})
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *SweepError", err)
	}
	var resumeCalls atomic.Int64
	got, err := ResumeDistanceMatrix(in, mat, err, func(ws *Workspace, a, b *ranking.PartialRanking) (float64, error) {
		i, j := indexOf(in, a, b)
		if se.Completed.Get(PairIndex(m, i, j)) {
			t.Errorf("resume recomputed completed cell (%d,%d)", i, j)
		}
		resumeCalls.Add(1)
		return KProfWS(ws, a, b)
	})
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	total := m * (m - 1) / 2
	if wantCalls := int64(total - se.Completed.Count()); resumeCalls.Load() != wantCalls {
		t.Errorf("resume computed %d cells, want exactly the %d incomplete ones", resumeCalls.Load(), wantCalls)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("[%d][%d] = %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// Without usable prior state, ResumeDistanceMatrix degrades to a full sweep.
func TestResumeWithoutPriorState(t *testing.T) {
	in := chaosEnsemble(t, 5, 8)
	want, err := DistanceMatrixWith(in, KProfWS)
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string, prev [][]float64, prevErr error) {
		t.Helper()
		got, err := ResumeDistanceMatrix(in, prev, prevErr, KProfWS)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("%s: [%d][%d] = %v, want %v", label, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
	check("nil error", nil, nil)
	check("plain error", nil, errors.New("not a sweep error"))
	check("wrong ensemble size", nil, &SweepError{Err: errors.New("x"), M: 3, Completed: guard.NewBitmap(3)})
}

// Repeated failures keep a monotonically growing union bitmap, so iterated
// resumption always converges. Cells fail (by panic or error) exactly once
// each; every round makes progress and the fixed point matches the clean
// sweep. Run under -race this is the chaos test of the supervision layer.
func TestResumeConvergesUnderChaos(t *testing.T) {
	const m = 18
	in := chaosEnsemble(t, 77, m)
	want, err := DistanceMatrixWith(in, KProfWS)
	if err != nil {
		t.Fatal(err)
	}
	total := m * (m - 1) / 2
	// Roughly a fifth of the cells misbehave on first touch: even-indexed
	// failers panic, odd-indexed ones error.
	var failOnce [1000]atomic.Bool
	shouldFail := func(idx int) bool { return idx%5 == 2 }
	d := func(ws *Workspace, a, b *ranking.PartialRanking) (float64, error) {
		i, j := indexOf(in, a, b)
		idx := PairIndex(m, i, j)
		if shouldFail(idx) && !failOnce[idx].Swap(true) {
			if idx%2 == 0 {
				panic(idx)
			}
			return 0, errors.New("transient cell error")
		}
		return KProfWS(ws, a, b)
	}
	mat, err := DistanceMatrixWith(in, d)
	rounds := 0
	lastDone := -1
	for err != nil {
		var se *SweepError
		if !errors.As(err, &se) {
			t.Fatalf("round %d: err = %T (%v), want *SweepError", rounds, err, err)
		}
		if done := se.Completed.Count(); done <= lastDone {
			t.Fatalf("round %d: no progress (%d completed, was %d)", rounds, done, lastDone)
		} else {
			lastDone = done
		}
		if rounds++; rounds > total {
			t.Fatal("resumption did not converge")
		}
		mat, err = ResumeDistanceMatrix(in, mat, err, d)
	}
	for i := range want {
		for j := range want[i] {
			if mat[i][j] != want[i][j] {
				t.Fatalf("converged matrix wrong at [%d][%d]: %v != %v", i, j, mat[i][j], want[i][j])
			}
		}
	}
	if rounds == 0 {
		t.Error("chaos injected no failures; test is vacuous")
	}
}

// A panic must not leak a poisoned workspace back into the package pool; the
// sweep joins cleanly and subsequent sweeps still work.
func TestSweepSurvivesRepeatedPanicSweeps(t *testing.T) {
	in := chaosEnsemble(t, 9, 10)
	for round := 0; round < 8; round++ {
		_, err := DistanceMatrixWith(in, func(ws *Workspace, a, b *ranking.PartialRanking) (float64, error) {
			panic("every cell panics")
		})
		if _, ok := guard.Recovered(err); !ok {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	// The pool still hands out working workspaces.
	got, err := DistanceMatrixWith(in, KProfWS)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := KProf(in[0], in[1])
	if got[0][1] != want {
		t.Errorf("post-chaos sweep wrong: %v != %v", got[0][1], want)
	}
}
