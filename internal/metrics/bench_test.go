package metrics

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

func benchRankings(n, maxBucket int) (*ranking.PartialRanking, *ranking.PartialRanking) {
	rng := rand.New(rand.NewSource(int64(n + maxBucket)))
	return randrank.Partial(rng, n, maxBucket), randrank.Partial(rng, n, maxBucket)
}

func BenchmarkCountPairs(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		a, c := benchRankings(n, 6)
		b.Run(fmt.Sprintf("fast/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := CountPairs(a, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, n := range []int{100, 1000} {
		a, c := benchRankings(n, 6)
		b.Run(fmt.Sprintf("naive/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := CountPairsNaive(a, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKendallFull(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1000, 100000} {
		a := randrank.Full(rng, n)
		c := randrank.Full(rng, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Kendall(a, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Benchmark the tie-density effect: the same n with very coarse vs very
// fine bucket structure.
func BenchmarkKProfTieDensity(b *testing.B) {
	for _, maxB := range []int{1, 10, 100} {
		a, c := benchRankings(10000, maxB)
		b.Run(fmt.Sprintf("maxBucket=%d", maxB), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := KProf(a, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDistanceMatrix(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	var in []*ranking.PartialRanking
	for i := 0; i < 16; i++ {
		in = append(in, randrank.Partial(rng, 2000, 6))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DistanceMatrix(in, KProf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKendallW(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	in, _ := randrank.MallowsEnsemble(rng, 10000, 9, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KendallW(in); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the bucket-aware discordance counter vs the sort-based engine,
// across tie densities. Heavy ties (few buckets) should favor the bucketed
// engine sharply.
func BenchmarkCountPairsAblation(b *testing.B) {
	for _, maxB := range []int{1, 10, 1000} {
		a, c := benchRankings(20000, maxB)
		b.Run(fmt.Sprintf("bucketed/maxBucket=%d", maxB), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := CountPairs(a, c); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("viaSort/maxBucket=%d", maxB), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := countPairsViaSort(a, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
