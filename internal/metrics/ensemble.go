package metrics

import (
	"repro/internal/ranking"
)

// AllDistances bundles the four paper metrics for one pair of partial
// rankings. By Theorem 7 the values always satisfy
// KProf <= FProf <= 2 KProf, KHaus <= FHaus <= 2 KHaus, and
// KProf <= KHaus <= 2 KProf.
type AllDistances struct {
	KProf float64
	FProf float64
	KHaus int64
	FHaus int64
}

// Distances computes all four paper metrics for one pair using a pooled
// workspace; see (*Workspace).Distances for the batched form.
func Distances(a, b *ranking.PartialRanking) (AllDistances, error) {
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	return ws.Distances(a, b)
}

// CompareAll computes the full symmetric m x m matrix of AllDistances for an
// ensemble — every Kendall- and footrule-family quantity for every pair in
// one batched pass. The upper triangle fans out across GOMAXPROCS worker
// goroutines, each reusing one pooled workspace, so the whole m^2 sweep
// performs O(workers) scratch allocations: the middleware regime of
// Fagin-Lotem-Naor and the large-ensemble regime of top-list aggregation,
// where per-distance garbage otherwise dominates. The diagonal is zero by
// regularity; the first error short-circuits the remaining pairs.
func CompareAll(rankings []*ranking.PartialRanking) ([][]AllDistances, error) {
	m := len(rankings)
	out := make([][]AllDistances, m)
	for i := range out {
		out[i] = make([]AllDistances, m)
	}
	err := forEachPair(m, "compare_all", func(ws *Workspace, i, j int) error {
		d, err := ws.Distances(rankings[i], rankings[j])
		if err != nil {
			return err
		}
		out[i][j] = d
		out[j][i] = d
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
