package metrics

import (
	"errors"
	"math"

	"repro/internal/ranking"
)

// This file provides the normalized correlation coefficients surrounding
// the paper's metrics. The Related Work section cites Kendall (1945), whose
// tie-aware variants of tau correspond to normalizations of the profile
// distance, and Baggerly (1995) for footrule analogues; practitioners
// usually consume these as coefficients in [-1, 1], so the library offers
// them alongside the raw metrics.

// ErrCorrelationUndefined is returned when a coefficient's denominator
// vanishes (e.g. a ranking with all elements tied has no rank variance).
var ErrCorrelationUndefined = errors.New("metrics: correlation undefined (zero variance or no comparable pairs)")

// KendallTauA returns Kendall's tau-a between two partial rankings:
// (concordant - discordant) / (n(n-1)/2). Ties simply dilute the
// coefficient toward 0. Defined for n >= 2.
func KendallTauA(a, b *ranking.PartialRanking) (float64, error) {
	pc, err := CountPairs(a, b)
	if err != nil {
		return 0, err
	}
	total := pc.Total()
	if total == 0 {
		return 0, ErrCorrelationUndefined
	}
	return float64(pc.Concordant-pc.Discordant) / float64(total), nil
}

// KendallTauB returns Kendall's tau-b, the tie-corrected coefficient of
// Kendall (1945):
//
//	tau_b = (C - D) / sqrt((N - Ta)(N - Tb)),
//
// where N = n(n-1)/2 and Ta, Tb count the pairs tied in each ranking. It is
// 1 exactly when the rankings are identical bucket orders and -1 when one
// is the reverse of the other. Undefined when either ranking is a single
// bucket.
func KendallTauB(a, b *ranking.PartialRanking) (float64, error) {
	pc, err := CountPairs(a, b)
	if err != nil {
		return 0, err
	}
	total := pc.Total()
	ta := pc.TiedOnlyInA + pc.TiedInBoth
	tb := pc.TiedOnlyInB + pc.TiedInBoth
	da := total - ta
	db := total - tb
	if da == 0 || db == 0 {
		return 0, ErrCorrelationUndefined
	}
	return float64(pc.Concordant-pc.Discordant) / math.Sqrt(float64(da)*float64(db)), nil
}

// NormalizedKProf returns Kprof scaled into [0, 1] by its maximum n(n-1)/2
// (attained by a full ranking against its reverse). This is the normalized
// profile distance corresponding to Kendall's 1945 treatment of ties cited
// in the paper's Related Work.
func NormalizedKProf(a, b *ranking.PartialRanking) (float64, error) {
	pc, err := CountPairs(a, b)
	if err != nil {
		return 0, err
	}
	total := pc.Total()
	if total == 0 {
		return 0, nil
	}
	return KProfFromCounts(pc) / float64(total), nil
}

// NormalizedFProf returns Fprof scaled by its maximum over full rankings,
// floor(n^2/2) (a full ranking against its reverse), giving a value in
// [0, 1] for all partial rankings as well, since ties only shrink position
// differences.
func NormalizedFProf(a, b *ranking.PartialRanking) (float64, error) {
	d, err := FProf(a, b)
	if err != nil {
		return 0, err
	}
	n := a.N()
	max := float64(n*n) / 2
	max = math.Floor(max)
	if max == 0 {
		return 0, nil
	}
	return d / max, nil
}

// SpearmanRho returns the Spearman rank correlation between two partial
// rankings, computed as the Pearson correlation of their position vectors —
// the standard mid-rank treatment of ties. Undefined when either ranking
// has zero rank variance (a single bucket).
func SpearmanRho(a, b *ranking.PartialRanking) (float64, error) {
	if err := ranking.CheckSameDomain(a, b); err != nil {
		return 0, err
	}
	n := a.N()
	if n == 0 {
		return 0, ErrCorrelationUndefined
	}
	mean := float64(n+1) / 2 // positions always average (n+1)/2
	var sxy, sxx, syy float64
	for e := 0; e < n; e++ {
		dx := a.Pos(e) - mean
		dy := b.Pos(e) - mean
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, ErrCorrelationUndefined
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
