package metrics

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

// Kavg's closed form agrees with the brute-force average over all pairs of
// full refinements.
func TestKAvgAgreesWithBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(7)
		a := randrank.Partial(rng, n, 3)
		b := randrank.Partial(rng, n, 3)
		got, err := KAvg(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want, err := KAvgBrute(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("KAvg=%v brute=%v\na=%v\nb=%v", got, want, a, b)
		}
	}
}

// Appendix A.3: Kavg is not a distance measure on general partial rankings —
// Kavg(sigma, sigma) > 0 when sigma has a bucket of size >= 2.
func TestKAvgSelfDistancePositive(t *testing.T) {
	sigma := ranking.MustFromBuckets(3, [][]int{{0, 1}, {2}})
	got, err := KAvg(sigma, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Errorf("KAvg(sigma,sigma) = %v, want 0.5", got)
	}
	// But Kprof(sigma, sigma) = 0: regularity is why the paper prefers it.
	kp, _ := KProf(sigma, sigma)
	if kp != 0 {
		t.Errorf("KProf(sigma,sigma) = %v, want 0", kp)
	}
}

// Appendix A.3: on top-k lists over their active domain, no pair is tied in
// both rankings, so Kavg = Kprof exactly. We generate top-k lists whose top
// sets cover the domain (active-domain condition).
func TestKAvgEqualsKProfOnActiveDomainTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		k := 2 + rng.Intn(4)
		n := k + 1 + rng.Intn(k) // n <= 2k so the two top sets can cover D
		if n > 2*k {
			n = 2 * k
		}
		perm := rng.Perm(n)
		a, err := ranking.TopKList(n, k, perm)
		if err != nil {
			t.Fatal(err)
		}
		// Build b's top set to contain every element outside a's top k.
		var rest, inA []int
		topA := map[int]bool{}
		for _, e := range perm[:k] {
			topA[e] = true
		}
		for e := 0; e < n; e++ {
			if !topA[e] {
				rest = append(rest, e)
			} else {
				inA = append(inA, e)
			}
		}
		rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
		rng.Shuffle(len(inA), func(i, j int) { inA[i], inA[j] = inA[j], inA[i] })
		orderB := append(append([]int{}, rest...), inA...)
		b, err := ranking.TopKList(n, k, orderB)
		if err != nil {
			t.Fatal(err)
		}
		pc, _ := CountPairs(a, b)
		if pc.TiedInBoth != 0 {
			t.Fatalf("active-domain construction failed: %+v\na=%v\nb=%v", pc, a, b)
		}
		kavg, _ := KAvg(a, b)
		kprof, _ := KProf(a, b)
		if kavg != kprof {
			t.Fatalf("Kavg=%v != Kprof=%v on active-domain top-k lists", kavg, kprof)
		}
	}
}

// Appendix A.3: Fprof = F^(l) at l = (n + k + 1)/2 for same-k top-k lists.
func TestFLocationIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(10)
		k := 1 + rng.Intn(n-1)
		a := randrank.TopK(rng, n, k)
		b := randrank.TopK(rng, n, k)
		l := float64(n+k+1) / 2
		fl, err := FLocation(a, b, l)
		if err != nil {
			t.Fatal(err)
		}
		fp, _ := FProf(a, b)
		if fl != fp {
			t.Fatalf("F^(l)=%v != Fprof=%v at l=%v\na=%v\nb=%v", fl, fp, l, a, b)
		}
	}
}

func TestFLocationMonotoneInL(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randrank.TopK(rng, 10, 3)
	b := randrank.TopK(rng, 10, 3)
	prev := -1.0
	for _, l := range []float64{4, 5, 6.5, 8, 10} {
		fl, err := FLocation(a, b, l)
		if err != nil {
			t.Fatal(err)
		}
		if fl < prev {
			t.Fatalf("F^(l) decreased from %v to %v at l=%v", prev, fl, l)
		}
		prev = fl
	}
}

func TestFLocationErrors(t *testing.T) {
	full := ranking.MustFromOrder([]int{0, 1, 2})
	tied := ranking.MustFromBuckets(3, [][]int{{0, 1}, {2}})
	topk := ranking.MustFromBuckets(3, [][]int{{0}, {1, 2}})
	if _, err := FLocation(tied, topk, 5); err == nil {
		t.Error("non-top-k input accepted")
	}
	if _, err := FLocation(topk, topk, 0.5); err == nil {
		t.Error("l < k accepted")
	}
	short := ranking.MustFromOrder([]int{0, 1})
	if _, err := FLocation(short, full, 5); err == nil {
		t.Error("domain mismatch accepted")
	}
	if _, err := KAvg(short, full); err == nil {
		t.Error("KAvg domain mismatch accepted")
	}
	if _, err := KAvgBrute(short, full); err == nil {
		t.Error("KAvgBrute domain mismatch accepted")
	}
}
