package metrics

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/randrank"
	"repro/internal/ranking"
)

func TestGammaKnownValues(t *testing.T) {
	id := ranking.MustFromOrder([]int{0, 1, 2, 3})
	rev := ranking.MustFromOrder([]int{3, 2, 1, 0})
	if g, _ := GoodmanKruskalGamma(id, id); g != 1 {
		t.Errorf("gamma(id,id) = %v, want 1", g)
	}
	if g, _ := GoodmanKruskalGamma(id, rev); g != -1 {
		t.Errorf("gamma(id,rev) = %v, want -1", g)
	}
	if d, _ := GammaDistance(id, rev); d != 1 {
		t.Errorf("gamma distance(id,rev) = %v, want 1", d)
	}
	if d, _ := GammaDistance(id, id); d != 0 {
		t.Errorf("gamma distance(id,id) = %v, want 0", d)
	}
}

// The paper's stated disadvantage: gamma is not always defined. When every
// pair is tied in at least one ranking, the denominator vanishes.
func TestGammaUndefined(t *testing.T) {
	all := ranking.MustFromBuckets(3, [][]int{{0, 1, 2}})
	full := ranking.MustFromOrder([]int{0, 1, 2})
	_, err := GoodmanKruskalGamma(all, full)
	if !errors.Is(err, ErrGammaUndefined) {
		t.Errorf("gamma vs everything-tied: err = %v, want ErrGammaUndefined", err)
	}
	if _, err := GammaDistance(all, full); !errors.Is(err, ErrGammaUndefined) {
		t.Errorf("GammaDistance: err = %v, want ErrGammaUndefined", err)
	}
	// Complementary ties: a = {0,1},{2}; b = {0},{1,2} — the pair (0,2) is
	// untied in both, so gamma is defined here.
	a := ranking.MustFromBuckets(3, [][]int{{0, 1}, {2}})
	b := ranking.MustFromBuckets(3, [][]int{{0}, {1, 2}})
	if _, err := GoodmanKruskalGamma(a, b); err != nil {
		t.Errorf("gamma unexpectedly undefined: %v", err)
	}
}

// GammaDistance is not regular: it can be 0 for distinct rankings, which is
// why the paper's metrics are preferable.
func TestGammaDistanceNotRegular(t *testing.T) {
	a := ranking.MustFromOrder([]int{0, 1, 2})
	b := ranking.MustFromBuckets(3, [][]int{{0, 1}, {2}})
	d, err := GammaDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("GammaDistance = %v, want 0 for consistent rankings", d)
	}
	if a.Equal(b) {
		t.Error("test rankings should be distinct")
	}
}

func TestGammaRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(20)
		a := randrank.Partial(rng, n, 4)
		b := randrank.Partial(rng, n, 4)
		g, err := GoodmanKruskalGamma(a, b)
		if errors.Is(err, ErrGammaUndefined) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if g < -1 || g > 1 {
			t.Fatalf("gamma out of range: %v", g)
		}
		gr, _ := GoodmanKruskalGamma(b, a)
		if g != gr {
			t.Fatalf("gamma not symmetric: %v vs %v", g, gr)
		}
	}
}

func TestGammaDomainMismatch(t *testing.T) {
	a := ranking.MustFromOrder([]int{0, 1})
	b := ranking.MustFromOrder([]int{0, 1, 2})
	if _, err := GoodmanKruskalGamma(a, b); err == nil {
		t.Error("domain mismatch accepted")
	}
}
