package metrics

import (
	"repro/internal/permutation"
	"repro/internal/ranking"
)

// Kendall returns the Kendall tau distance K(a, b) between two full rankings
// (Section 2.2): the number of pairwise disagreements, equal to the number of
// exchanges a bubble sort needs to convert one ranking into the other.
// It runs in O(n log n) on a pooled workspace and errors if either input has
// ties.
func Kendall(a, b *ranking.PartialRanking) (int64, error) {
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	return ws.Kendall(a, b)
}

// KendallViaInversions is the pre-workspace Kendall engine — walk a's order
// best-first and count inversions of b's positions along the walk — retained
// as an independent implementation for cross-checks.
func KendallViaInversions(a, b *ranking.PartialRanking) (int64, error) {
	if err := ranking.CheckSameDomain(a, b); err != nil {
		return 0, err
	}
	if !a.IsFull() || !b.IsFull() {
		return 0, errNotFull("Kendall")
	}
	order := a.Order()
	seq := make([]int64, len(order))
	for i, e := range order {
		seq[i] = b.Pos2(e)
	}
	return permutation.CountInversions(seq), nil
}

// KendallNaive is the O(n^2) reference for Kendall.
func KendallNaive(a, b *ranking.PartialRanking) (int64, error) {
	if err := ranking.CheckSameDomain(a, b); err != nil {
		return 0, err
	}
	if !a.IsFull() || !b.IsFull() {
		return 0, errNotFull("Kendall")
	}
	var k int64
	for i := 0; i < a.N(); i++ {
		for j := i + 1; j < a.N(); j++ {
			if a.Ahead(i, j) != b.Ahead(i, j) {
				k++
			}
		}
	}
	return k, nil
}

// Footrule returns the Spearman footrule distance F(a, b) = L1(a, b) between
// two full rankings (Section 2.2). It errors if either input has ties; for
// partial rankings use FProf, which is the same L1 formula on bucket
// positions.
func Footrule(a, b *ranking.PartialRanking) (int64, error) {
	if err := ranking.CheckSameDomain(a, b); err != nil {
		return 0, err
	}
	if !a.IsFull() || !b.IsFull() {
		return 0, errNotFull("Footrule")
	}
	var sum2 int64
	for e := 0; e < a.N(); e++ {
		d := a.Pos2(e) - b.Pos2(e)
		if d < 0 {
			d = -d
		}
		sum2 += d
	}
	return sum2 / 2, nil
}

// L1 returns the L1 distance between two same-length score vectors,
// L1(f, g) = sum_i |f(i) - g(i)| (Section 2, "Notation").
func L1(f, g []float64) float64 {
	if len(f) != len(g) {
		panic("metrics: L1 length mismatch")
	}
	var sum float64
	for i := range f {
		d := f[i] - g[i]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum
}
