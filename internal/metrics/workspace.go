package metrics

import (
	"slices"
	"sync"

	"repro/internal/permutation"
	"repro/internal/ranking"
	"repro/internal/telemetry"
)

// Gated telemetry instruments of the workspace layer. Increments are atomic
// adds behind a single enabled-flag load, so the kernels stay at 0 allocs/op
// (and near-zero overhead) with telemetry disabled.
var (
	tPoolGets      = telemetry.GetCounter("metrics.workspace.pool.gets")
	tPoolPuts      = telemetry.GetCounter("metrics.workspace.pool.puts")
	tPoolMisses    = telemetry.GetCounter("metrics.workspace.pool.misses")
	tCountPairs    = telemetry.GetCounter("metrics.kernel.countpairs")
	tFHaus         = telemetry.GetCounter("metrics.kernel.fhaus")
	tFHausFallback = telemetry.GetCounter("metrics.kernel.fhaus.fallback")
)

// Workspace holds the reusable scratch state of the metric kernels: a
// Fenwick tree for discordance counting, per-element bucket-index and sort
// buffers, and the packed-key buffers of the Hausdorff witness kernel. A
// warm Workspace lets CountPairs, the Kendall family, and the footrule
// family run with zero heap allocations, which is what ensemble workloads
// (DistanceMatrix, SumDistance, aggregation objective evaluation, MEDRANK
// scoring) need: O(1) allocations per distance instead of O(n).
//
// A Workspace is not safe for concurrent use; give each goroutine its own,
// either via NewWorkspace or the package pool (GetWorkspace/PutWorkspace).
// The zero value is ready to use. Workspaces hold no references to the
// rankings they process, so pooling never extends ranking lifetimes.
type Workspace struct {
	ft    permutation.Fenwick // discordance counter over b's bucket indices
	bkts  []int32             // per-a-bucket sort buffer of b-bucket indices
	keys  []uint64            // packed (bucket, bucket, element) sort keys
	ranks []int32             // element -> witness-rank scratch
}

// NewWorkspace returns an empty workspace. Scratch buffers grow on first use
// and are retained across calls.
func NewWorkspace() *Workspace { return &Workspace{} }

var workspacePool = sync.Pool{New: func() any {
	tPoolMisses.Inc()
	return NewWorkspace()
}}

// GetWorkspace takes a workspace from the package pool. Pair it with
// PutWorkspace; the package-level metric functions use this pool internally,
// so casual callers never see it, while batch engines check a workspace out
// once per goroutine.
func GetWorkspace() *Workspace {
	tPoolGets.Inc()
	return workspacePool.Get().(*Workspace)
}

// PutWorkspace returns a workspace to the package pool. The workspace must
// not be used after it is put back.
func PutWorkspace(ws *Workspace) {
	tPoolPuts.Inc()
	workspacePool.Put(ws)
}

// PoolSnapshot is a point-in-time view of the workspace pool's telemetry
// counters. A get that is not matched by a miss reused a pooled workspace's
// scratch state; Gets - Misses is therefore the number of reuses.
type PoolSnapshot struct {
	// Gets counts GetWorkspace calls (direct and via the package-level
	// metric functions).
	Gets int64
	// Puts counts PutWorkspace calls.
	Puts int64
	// Misses counts pool misses: gets that had to allocate a fresh
	// workspace because none was pooled.
	Misses int64
}

// PoolStats snapshots the workspace pool counters. Counting is gated on
// telemetry.Enabled(); with telemetry disabled the snapshot is frozen at
// whatever was last recorded.
func PoolStats() PoolSnapshot {
	return PoolSnapshot{
		Gets:   tPoolGets.Value(),
		Puts:   tPoolPuts.Value(),
		Misses: tPoolMisses.Value(),
	}
}

// i32 returns the int32 scratch buffer with capacity for n entries.
func (ws *Workspace) i32(n int) []int32 {
	if cap(ws.bkts) < n {
		ws.bkts = make([]int32, n)
	}
	return ws.bkts[:n]
}

// u64 returns the packed-key scratch buffer with room for n entries.
func (ws *Workspace) u64(n int) []uint64 {
	if cap(ws.keys) < n {
		ws.keys = make([]uint64, n)
	}
	return ws.keys[:n]
}

// rank32 returns the rank scratch buffer with room for n entries.
func (ws *Workspace) rank32(n int) []int32 {
	if cap(ws.ranks) < n {
		ws.ranks = make([]int32, n)
	}
	return ws.ranks[:n]
}

// CountPairs classifies all element pairs of two same-domain partial
// rankings exactly as the package-level CountPairs, reusing the workspace's
// scratch state so a warm call performs no heap allocation. Pairs tied in
// both rankings are counted by sorting each a-bucket's b-bucket indices in
// a reusable buffer and summing equal runs — replacing the per-call hash
// map of the original engine — and discordances come from the workspace's
// Fenwick tree over b's buckets, reset in place.
func (ws *Workspace) CountPairs(a, b *ranking.PartialRanking) (PairCounts, error) {
	if err := ranking.CheckSameDomain(a, b); err != nil {
		return PairCounts{}, err
	}
	tCountPairs.Inc()
	n := a.N()
	var pc PairCounts
	tiedA := tiedPairs(a)
	tiedB := tiedPairs(b)

	// Walk a's buckets best-first. For each bucket: count discordances of
	// its elements against everything already inserted (strictly later
	// b-buckets), then count its tied-in-both pairs by sorting the bucket's
	// b-bucket indices and summing runs, then insert the bucket. Elements
	// of one a-bucket are inserted only after the whole bucket is counted,
	// so a-tied pairs contribute no discordances; b-tied pairs are excluded
	// by the strict Fenwick range.
	bof := b.BucketIndices()
	ws.ft.Reset(b.NumBuckets())
	seg := ws.i32(n)
	var seen int64
	for ai := 0; ai < a.NumBuckets(); ai++ {
		bucket := a.Bucket(ai)
		s := seg[:0]
		for _, e := range bucket {
			bi := bof[e]
			pc.Discordant += seen - ws.ft.PrefixSum(bi)
			s = append(s, int32(bi))
		}
		if len(s) > 1 {
			slices.Sort(s)
			run := int64(1)
			for i := 1; i < len(s); i++ {
				if s[i] == s[i-1] {
					run++
					continue
				}
				pc.TiedInBoth += run * (run - 1) / 2
				run = 1
			}
			pc.TiedInBoth += run * (run - 1) / 2
		}
		for _, bi := range s {
			ws.ft.Add(int(bi), 1)
		}
		seen += int64(len(bucket))
	}

	pc.TiedOnlyInA = tiedA - pc.TiedInBoth
	pc.TiedOnlyInB = tiedB - pc.TiedInBoth
	total := int64(n) * int64(n-1) / 2
	pc.Concordant = total - tiedA - tiedB + pc.TiedInBoth - pc.Discordant
	return pc, nil
}

// KProf returns the Kendall profile metric Kprof = K^(1/2) (Section 3.1)
// without allocating on a warm workspace.
func (ws *Workspace) KProf(a, b *ranking.PartialRanking) (float64, error) {
	pc, err := ws.CountPairs(a, b)
	if err != nil {
		return 0, err
	}
	return KProfFromCounts(pc), nil
}

// KProf2 returns the doubled profile distance 2*Kprof as an exact integer.
func (ws *Workspace) KProf2(a, b *ranking.PartialRanking) (int64, error) {
	pc, err := ws.CountPairs(a, b)
	if err != nil {
		return 0, err
	}
	return 2*pc.Discordant + pc.TiedOnlyInA + pc.TiedOnlyInB, nil
}

// KWithPenalty returns K^(p) for p in [0, 1] (Section 3.1).
func (ws *Workspace) KWithPenalty(a, b *ranking.PartialRanking, p float64) (float64, error) {
	if p < 0 || p > 1 {
		return 0, errPenaltyRange(p)
	}
	pc, err := ws.CountPairs(a, b)
	if err != nil {
		return 0, err
	}
	return float64(pc.Discordant) + p*float64(pc.TiedOnlyInA+pc.TiedOnlyInB), nil
}

// KHaus returns the Hausdorff-Kendall metric via the Proposition 6 formula.
func (ws *Workspace) KHaus(a, b *ranking.PartialRanking) (int64, error) {
	pc, err := ws.CountPairs(a, b)
	if err != nil {
		return 0, err
	}
	return KHausFromCounts(pc), nil
}

// KAvg returns the average Kendall distance over refinement pairs
// (Appendix A.3).
func (ws *Workspace) KAvg(a, b *ranking.PartialRanking) (float64, error) {
	pc, err := ws.CountPairs(a, b)
	if err != nil {
		return 0, err
	}
	return float64(pc.Discordant) +
		float64(pc.TiedOnlyInA+pc.TiedOnlyInB)/2 +
		float64(pc.TiedInBoth)/2, nil
}

// Kendall returns the Kendall tau distance between two full rankings. On
// full rankings every pair is untied in both, so the distance is exactly the
// discordant count of the pair-classification kernel.
func (ws *Workspace) Kendall(a, b *ranking.PartialRanking) (int64, error) {
	if err := ranking.CheckSameDomain(a, b); err != nil {
		return 0, err
	}
	if !a.IsFull() || !b.IsFull() {
		return 0, errNotFull("Kendall")
	}
	pc, err := ws.CountPairs(a, b)
	if err != nil {
		return 0, err
	}
	return pc.Discordant, nil
}

// FProf returns the footrule profile metric Fprof (Section 3.1).
func (ws *Workspace) FProf(a, b *ranking.PartialRanking) (float64, error) {
	d2, err := ws.FProf2(a, b)
	if err != nil {
		return 0, err
	}
	return float64(d2) / 2, nil
}

// FProf2 returns the doubled footrule profile distance as an exact integer.
// The kernel reads the rankings through their copy-free accessors; it never
// allocates (workspace or not — it is defined on Workspace for uniformity).
func (ws *Workspace) FProf2(a, b *ranking.PartialRanking) (int64, error) {
	return FProf2(a, b)
}

// Footrule returns the Spearman footrule distance between two full rankings.
func (ws *Workspace) Footrule(a, b *ranking.PartialRanking) (int64, error) {
	if err := ranking.CheckSameDomain(a, b); err != nil {
		return 0, err
	}
	if !a.IsFull() || !b.IsFull() {
		return 0, errNotFull("Footrule")
	}
	d2, err := ws.FProf2(a, b)
	if err != nil {
		return 0, err
	}
	return d2 / 2, nil
}

// maxPackedN bounds the domain size of the packed-key Hausdorff kernel:
// three 21-bit fields (bucket, bucket, element) must fit one uint64 sort
// key. Larger domains fall back to the allocating refinement construction.
const maxPackedN = 1 << 21

// FHaus returns the Hausdorff-footrule metric via the Theorem 5 witness
// characterization, computed without materializing the refinements: each
// witness full ranking sorts the domain by a (bucket, bucket, element)
// triple, so its position vector is recovered by sorting packed 64-bit keys
// in the workspace's reusable buffers. Zero allocations on a warm workspace
// for n < 2^21; beyond that it falls back to FHausViaRefinement.
func (ws *Workspace) FHaus(a, b *ranking.PartialRanking) (int64, error) {
	if err := ranking.CheckSameDomain(a, b); err != nil {
		return 0, err
	}
	n := a.N()
	tFHaus.Inc()
	if n >= maxPackedN {
		tFHausFallback.Inc()
		return FHausViaRefinement(a, b)
	}
	if n < 2 {
		return 0, nil
	}
	aof, bof := a.BucketIndices(), b.BucketIndices()
	ta, tb := a.NumBuckets(), b.NumBuckets()
	keys := ws.u64(n)
	ranks := ws.rank32(n)

	// Witness pair 1 (Theorem 5, rho = identity):
	//	sigma1 = rho*tauR*sigma orders by (sigma-bucket, reversed-tau-bucket, id)
	//	tau1   = rho*sigma*tau  orders by (tau-bucket, sigma-bucket, id)
	f1 := witnessFootrule(keys, ranks, aof, bof, tb-1, false)
	// Witness pair 2:
	//	sigma2 = rho*tau*sigma  orders by (sigma-bucket, tau-bucket, id)
	//	tau2   = rho*sigmaR*tau orders by (tau-bucket, reversed-sigma-bucket, id)
	f2 := witnessFootrule(keys, ranks, aof, bof, ta-1, true)
	return max64(f1, f2), nil
}

// witnessFootrule computes F(sigma_w, tau_w) for one Theorem 5 witness pair.
// The secondary sort key of exactly one side is reversed: for pair 1 the
// sigma-side refines by tauR (rev indexes bof), for pair 2 the tau-side
// refines by sigmaR (rev indexes aof, selected by revOnTau). Positions in a
// full ranking are its sort ranks, so F is the L1 distance of the two rank
// vectors.
func witnessFootrule(keys []uint64, ranks []int32, aof, bof []int, rev int, revOnTau bool) int64 {
	const (
		shift1 = 42
		shift2 = 21
		mask   = uint64(1<<21 - 1)
	)
	n := len(aof)
	for e := 0; e < n; e++ {
		second := bof[e]
		if !revOnTau {
			second = rev - second
		}
		keys[e] = uint64(aof[e])<<shift1 | uint64(second)<<shift2 | uint64(e)
	}
	slices.Sort(keys)
	for i, k := range keys {
		ranks[k&mask] = int32(i)
	}
	for e := 0; e < n; e++ {
		second := aof[e]
		if revOnTau {
			second = rev - second
		}
		keys[e] = uint64(bof[e])<<shift1 | uint64(second)<<shift2 | uint64(e)
	}
	slices.Sort(keys)
	var f int64
	for i, k := range keys {
		d := int64(i) - int64(ranks[k&mask])
		if d < 0 {
			d = -d
		}
		f += d
	}
	return f
}

// Distances computes all four paper metrics in a single pair-classification
// pass plus one position sweep and one witness kernel — the batched
// counterpart of calling KProf, FProf, KHaus, and FHaus separately. Zero
// allocations on a warm workspace.
func (ws *Workspace) Distances(a, b *ranking.PartialRanking) (AllDistances, error) {
	pc, err := ws.CountPairs(a, b)
	if err != nil {
		return AllDistances{}, err
	}
	d := AllDistances{KProf: KProfFromCounts(pc), KHaus: KHausFromCounts(pc)}
	f2, err := ws.FProf2(a, b)
	if err != nil {
		return AllDistances{}, err
	}
	d.FProf = float64(f2) / 2
	if d.FHaus, err = ws.FHaus(a, b); err != nil {
		return AllDistances{}, err
	}
	return d, nil
}

// Gamma returns the Goodman-Kruskal gamma association, or ErrGammaUndefined
// when no pair is untied in both rankings.
func (ws *Workspace) Gamma(a, b *ranking.PartialRanking) (float64, error) {
	pc, err := ws.CountPairs(a, b)
	if err != nil {
		return 0, err
	}
	den := pc.Concordant + pc.Discordant
	if den == 0 {
		return 0, ErrGammaUndefined
	}
	return float64(pc.Concordant-pc.Discordant) / float64(den), nil
}
