package rankties

import (
	"repro/internal/ranking"
	"repro/internal/topklists"
)

// FKSList is a top-k list in the varying-domain model of Fagin, Kumar, and
// Sivakumar ("Comparing top k lists") that Appendix A.3 of the paper
// compares against: a ranking of the list's OWN k items, with no fixed
// universal domain. Distances between two such lists are taken over their
// active domain (the union of their items).
type FKSList = topklists.List

// NewFKSList builds an FKS top-k list from items listed best-first.
func NewFKSList(items ...int) (*FKSList, error) { return topklists.New(items...) }

// FKSKPenalty returns the FKS Kendall distance with penalty parameter p
// over the active domain. By Appendix A.3 it equals KWithPenalty on the
// fixed-domain embedding (see FKSEmbed).
func FKSKPenalty(a, b *FKSList, p float64) (float64, error) {
	return topklists.KPenalty(a, b, p)
}

// FKSFLocation returns the FKS footrule distance with location parameter l
// over the active domain.
func FKSFLocation(a, b *FKSList, l float64) (float64, error) {
	return topklists.FLocation(a, b, l)
}

// FKSEmbed maps two FKS lists onto this library's fixed-domain scenario:
// the active domain becomes {0..n-1} and each list becomes a Section 2
// top-k partial ranking. The returned dom slice maps dense IDs back to the
// original item IDs.
func FKSEmbed(a, b *FKSList) (pa, pb *PartialRanking, dom []int, err error) {
	var ra, rb *ranking.PartialRanking
	ra, rb, dom, err = topklists.Embed(a, b)
	return ra, rb, dom, err
}
