// Command dbbench sweeps the database-catalog workload of the paper across
// catalog sizes, voter counts, attribute cardinalities, and k, and reports
// the sequential-access cost of the streaming median top-k engine under
// three cost models: element-granular probes, bucket-granular I/Os (one
// index-scan I/O returns a whole run of tied rows), and the full scan every
// other aggregation method needs. It is the practitioner's version of
// experiment E7: run it on the parameter ranges that match your schema.
//
// Usage:
//
//	dbbench [-n 1000,10000] [-m 4,6] [-values 3,5,25] [-k 1,10] [-zipf 1.0]
//	        [-theta 1.5] [-trials 3] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/randrank"
	"repro/internal/topk"
)

func main() {
	ns := flag.String("n", "1000,10000", "comma-separated catalog sizes")
	ms := flag.String("m", "4,6", "comma-separated attribute counts")
	values := flag.String("values", "3,5,25", "comma-separated distinct-value counts per attribute")
	ks := flag.String("k", "1,10", "comma-separated k values")
	zipf := flag.Float64("zipf", 1.0, "Zipf skew of attribute values")
	theta := flag.Float64("theta", 1.5, "Mallows concentration of attributes around the hidden order")
	trials := flag.Int("trials", 3, "trials per configuration (averaged)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	nsV, err1 := parseInts(*ns)
	msV, err2 := parseInts(*ms)
	valuesV, err3 := parseInts(*values)
	ksV, err4 := parseInts(*ks)
	for _, err := range []error{err1, err2, err3, err4} {
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbbench:", err)
			os.Exit(1)
		}
	}

	rng := rand.New(rand.NewSource(*seed))
	fmt.Printf("%-7s %-3s %-7s %-4s %12s %12s %12s %10s\n",
		"n", "m", "values", "k", "elem probes", "bucket I/Os", "full scan", "time")
	for _, n := range nsV {
		for _, m := range msV {
			for _, nv := range valuesV {
				for _, k := range ksV {
					if k > n {
						continue
					}
					var sumProbes, sumIOs, sumFull int
					var elapsed time.Duration
					for trial := 0; trial < *trials; trial++ {
						ens := randrank.CatalogEnsemble(rng, n, m, nv, *zipf, *theta)
						start := time.Now()
						res, err := topk.MedRank(ens.Rankings, k, topk.GlobalMergeBuckets)
						elapsed += time.Since(start)
						if err != nil {
							fmt.Fprintln(os.Stderr, "dbbench:", err)
							os.Exit(1)
						}
						sumProbes += res.Stats.Total
						sumIOs += res.Stats.TotalBucketProbes
						sumFull += topk.FullScanCost(ens.Rankings).Total
					}
					fmt.Printf("%-7d %-3d %-7d %-4d %12d %12d %12d %10s\n",
						n, m, nv, k,
						sumProbes / *trials, sumIOs / *trials, sumFull / *trials,
						(elapsed / time.Duration(*trials)).Round(time.Microsecond))
				}
			}
		}
	}
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad integer list entry %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty integer list %q", csv)
	}
	return out, nil
}
