// Command dbbench sweeps the database-catalog workload of the paper across
// catalog sizes, voter counts, attribute cardinalities, and k, and reports
// the sequential-access cost of the streaming median top-k engine under
// three cost models: element-granular probes, bucket-granular I/Os (one
// index-scan I/O returns a whole run of tied rows), and the full scan every
// other aggregation method needs. It is the practitioner's version of
// experiment E7: run it on the parameter ranges that match your schema.
//
// With -stats the human-readable table is replaced by a JSON document that
// additionally runs the TA, NRA, and CA baselines on every configuration and
// reports sequential/random access counts, the sequential-only and
// cost-weighted certificate lower bounds, middleware costs at (cs=1,
// cr=-cost-ratio), and per-engine cost-weighted optimality ratios (Theorems
// 30-32), plus a snapshot of the telemetry registry. -trace appends the span
// event log; -debug ADDR serves net/http/pprof and expvar for the duration of
// the run.
//
// -chaos replaces the sweep with the fault-injection experiment E15: MEDRANK
// over fallible sources at increasing list-death rates, reporting how far the
// degraded answers drift from the fault-free ones. -timeout puts a wall-clock
// deadline on every engine run; a run that exceeds it aborts the sweep with
// context.DeadlineExceeded.
//
// -catalog FILE replaces the synthetic sweep with a real CSV catalog: column
// types are sniffed from the data, the table is loaded through the hardened
// admission path (add -lenient to drop defective rows with a "# defect:"
// report on stderr instead of aborting), and the top-k query runs over
// ascending index scans of every numeric column for each -k value.
//
// Usage:
//
//	dbbench [-n 1000,10000] [-m 4,6] [-values 3,5,25] [-k 1,10] [-zipf 1.0]
//	        [-theta 1.5] [-trials 3] [-seed 1] [-timeout 0] [-stats] [-trace]
//	        [-chaos] [-debug addr]
//	dbbench -catalog file.csv [-keycol name] [-lenient] [-k 1,10]
package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/db"
	"repro/internal/experiments"
	"repro/internal/guard"
	"repro/internal/randrank"
	"repro/internal/service/debugserve"
	"repro/internal/telemetry"
	"repro/internal/topk"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dbbench:", err)
		os.Exit(1)
	}
}

// engineStats is one engine's access profile on one configuration, averaged
// over trials.
type engineStats struct {
	Sequential int `json:"sequential"`
	Random     int `json:"random"`
	BucketIOs  int `json:"bucket_ios"`
	MaxDepth   int `json:"max_depth"`
	// OptimalityRatio is the legacy equal-weights ratio (total accesses over
	// the sequential-only certificate). It is only sound — and only emitted —
	// for engines that make no random accesses (MEDRANK, NRA); pricing TA's
	// or CA's random accesses against a sequential-only bound was the bug
	// this field's companion replaces.
	OptimalityRatio float64 `json:"optimality_ratio,omitempty"`
	// MiddlewareCost is the FLN cost cs·sequential + cr·random at
	// (cs=1, cr=cost_ratio), and CostOptimalityRatio divides it by the
	// cost-weighted certificate computed at the same weights.
	MiddlewareCost      int     `json:"middleware_cost"`
	CostOptimalityRatio float64 `json:"cost_optimality_ratio"`
}

// configStats is the JSON record emitted per configuration under -stats.
type configStats struct {
	N       int         `json:"n"`
	M       int         `json:"m"`
	Values  int         `json:"values"`
	K       int         `json:"k"`
	MedRank engineStats `json:"medrank"`
	TA      engineStats `json:"ta"`
	NRA     engineStats `json:"nra"`
	CA      engineStats `json:"ca"`
	FullScan    int `json:"full_scan"`
	Certificate int `json:"certificate"`
	// CostRatio is the cR/cS weight of the sweep and CostCertificate the
	// cost-weighted per-instance lower bound at (cs=1, cr=CostRatio),
	// averaged over trials like Certificate.
	CostRatio       int   `json:"cost_ratio"`
	CostCertificate int   `json:"cost_certificate"`
	ElapsedNs       int64 `json:"elapsed_ns"`
}

// statsDoc is the top-level -stats JSON document.
type statsDoc struct {
	Trials    int                `json:"trials"`
	Seed      int64              `json:"seed"`
	Configs   []configStats      `json:"configs"`
	Telemetry telemetry.Snapshot `json:"telemetry"`
	Trace     []telemetry.Event  `json:"trace,omitempty"`
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dbbench", flag.ContinueOnError)
	ns := fs.String("n", "1000,10000", "comma-separated catalog sizes")
	ms := fs.String("m", "4,6", "comma-separated attribute counts")
	values := fs.String("values", "3,5,25", "comma-separated distinct-value counts per attribute")
	ks := fs.String("k", "1,10", "comma-separated k values")
	zipf := fs.Float64("zipf", 1.0, "Zipf skew of attribute values")
	theta := fs.Float64("theta", 1.5, "Mallows concentration of attributes around the hidden order")
	trials := fs.Int("trials", 3, "trials per configuration (averaged)")
	seed := fs.Int64("seed", 1, "random seed")
	stats := fs.Bool("stats", false, "emit access statistics as JSON (MEDRANK, TA, NRA, and CA on every configuration, cost-weighted optimality ratios, telemetry snapshot)")
	costRatio := fs.Int("cost-ratio", 10, "cR/cS weight pricing random accesses in the -stats cost columns and scheduling CA")
	trace := fs.Bool("trace", false, "record telemetry spans and append the trace event log to the JSON (implies -stats)")
	chaos := fs.Bool("chaos", false, "run the fault-injection experiment (E15) instead of the access-cost sweep")
	catalog := fs.String("catalog", "", "query a real CSV catalog instead of sweeping synthetic ones")
	keycol := fs.String("keycol", "", "primary-key column of -catalog (default: first header column)")
	lenient := fs.Bool("lenient", false, "with -catalog, drop defective rows (reported as '# defect:' lines on stderr) instead of aborting")
	timeout := fs.Duration("timeout", 0, "per-engine-run deadline; 0 means none")
	debug := fs.String("debug", "", "serve net/http/pprof and expvar on this address for the duration of the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chaos {
		table, err := experiments.Run("E15", *seed)
		if err != nil {
			return err
		}
		return table.Render(stdout)
	}
	if *catalog != "" {
		ksV, err := parseInts(*ks)
		if err != nil {
			return err
		}
		return runCatalog(*catalog, *keycol, *lenient, ksV, stdout)
	}

	nsV, err := parseInts(*ns)
	if err != nil {
		return err
	}
	msV, err := parseInts(*ms)
	if err != nil {
		return err
	}
	valuesV, err := parseInts(*values)
	if err != nil {
		return err
	}
	ksV, err := parseInts(*ks)
	if err != nil {
		return err
	}
	if *trials < 1 {
		return fmt.Errorf("trials must be positive, got %d", *trials)
	}
	if *costRatio < 0 {
		return fmt.Errorf("cost-ratio must be non-negative, got %d", *costRatio)
	}
	if *trace {
		*stats = true
	}
	if *stats {
		telemetry.Enable()
		telemetry.Default.Reset()
		telemetry.ResetTrace()
	}
	if *debug != "" {
		srv, err := debugserve.Start(*debug)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "dbbench: debug server shutdown: %v\n", err)
			}
		}()
		telemetry.PublishExpvar()
		fmt.Fprintf(os.Stderr, "dbbench: debug server on http://%s/debug/pprof/ and /debug/vars\n", srv.Addr())
	}

	rng := rand.New(rand.NewSource(*seed))
	doc := statsDoc{Trials: *trials, Seed: *seed}
	if !*stats {
		fmt.Fprintf(stdout, "%-7s %-3s %-7s %-4s %12s %12s %12s %10s\n",
			"n", "m", "values", "k", "elem probes", "bucket I/Os", "full scan", "time")
	}
	for _, n := range nsV {
		for _, m := range msV {
			for _, nv := range valuesV {
				for _, k := range ksV {
					if k > n {
						continue
					}
					cs, err := sweepConfig(rng, n, m, nv, k, *zipf, *theta, *trials, *stats, *costRatio, *timeout)
					if err != nil {
						return err
					}
					if *stats {
						doc.Configs = append(doc.Configs, cs)
					} else {
						fmt.Fprintf(stdout, "%-7d %-3d %-7d %-4d %12d %12d %12d %10s\n",
							n, m, nv, k,
							cs.MedRank.Sequential, cs.MedRank.BucketIOs, cs.FullScan,
							time.Duration(cs.ElapsedNs).Round(time.Microsecond))
					}
				}
			}
		}
	}
	if *stats {
		doc.Telemetry = telemetry.Default.Snapshot()
		if *trace {
			doc.Trace = telemetry.TraceEvents()
		}
		return writeJSON(stdout, doc)
	}
	return nil
}

// sweepConfig runs one (n, m, values, k) configuration for the given number
// of trials and averages the access profile of MEDRANK and, when withAll is
// set, of the TA, NRA, and CA baselines over the same ensembles. All engines
// are priced under one cost model (cs=1, cr=costRatio) against one
// cost-weighted certificate — the fix for the old report, which divided TA's
// mixed access count by a sequential-only bound. A non-zero timeout is
// applied per engine run; hitting it aborts the sweep.
func sweepConfig(rng *rand.Rand, n, m, nv, k int, zipf, theta float64, trials int, withAll bool, costRatio int, timeout time.Duration) (configStats, error) {
	cs := configStats{N: n, M: m, Values: nv, K: k, CostRatio: costRatio}
	var elapsed time.Duration
	var medRatio, nraRatio float64
	costRatios := make(map[string]float64, 4)
	deadlined := func(run func(context.Context) error) error {
		ctx := context.Background()
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		return run(ctx)
	}
	accumulate := func(es *engineStats, name string, st topk.AccessStats, costCert int) {
		es.Sequential += st.Total
		es.Random += st.Random
		es.BucketIOs += st.TotalBucketProbes
		if st.MaxDepth > es.MaxDepth {
			es.MaxDepth = st.MaxDepth
		}
		es.MiddlewareCost += st.MiddlewareCost(1, costRatio)
		costRatios[name] += st.CostOptimalityRatio(1, costRatio, costCert)
	}
	for trial := 0; trial < trials; trial++ {
		ens := randrank.CatalogEnsemble(rng, n, m, nv, zipf, theta)
		start := time.Now()
		var res *topk.Result
		err := deadlined(func(ctx context.Context) error {
			var err error
			res, err = topk.MedRankContext(ctx, ens.Rankings, k, topk.GlobalMergeBuckets)
			return err
		})
		elapsed += time.Since(start)
		if err != nil {
			return cs, err
		}
		cert := topk.CertificateLowerBound(ens.Rankings, res.Winners)
		costCert := topk.CertificateLowerBoundCost(ens.Rankings, res.Winners, 1, costRatio)
		cs.Certificate += cert
		cs.CostCertificate += costCert
		medRatio += res.Stats.OptimalityRatio(cert)
		accumulate(&cs.MedRank, "medrank", res.Stats, costCert)
		cs.FullScan += topk.FullScanCost(ens.Rankings).Total
		if withAll {
			for _, eng := range []struct {
				name string
				es   *engineStats
				run  func(context.Context) (*topk.Result, error)
			}{
				{"ta", &cs.TA, func(ctx context.Context) (*topk.Result, error) {
					return topk.ThresholdTopKContext(ctx, ens.Rankings, k)
				}},
				{"nra", &cs.NRA, func(ctx context.Context) (*topk.Result, error) {
					return topk.NRAContext(ctx, ens.Rankings, k)
				}},
				{"ca", &cs.CA, func(ctx context.Context) (*topk.Result, error) {
					return topk.CAContext(ctx, ens.Rankings, k, costRatio)
				}},
			} {
				var r *topk.Result
				err := deadlined(func(ctx context.Context) error {
					var err error
					r, err = eng.run(ctx)
					return err
				})
				if err != nil {
					return cs, err
				}
				if eng.name == "nra" {
					// NRA makes no random accesses, so the legacy
					// sequential-only ratio is sound for it too.
					nraRatio += r.Stats.OptimalityRatio(cert)
				}
				accumulate(eng.es, eng.name, r.Stats, costCert)
			}
		}
	}
	for _, es := range []*engineStats{&cs.MedRank, &cs.TA, &cs.NRA, &cs.CA} {
		es.Sequential /= trials
		es.Random /= trials
		es.BucketIOs /= trials
		es.MiddlewareCost /= trials
	}
	cs.FullScan /= trials
	cs.Certificate /= trials
	cs.CostCertificate /= trials
	cs.MedRank.OptimalityRatio = medRatio / float64(trials)
	cs.NRA.OptimalityRatio = nraRatio / float64(trials)
	cs.MedRank.CostOptimalityRatio = costRatios["medrank"] / float64(trials)
	cs.TA.CostOptimalityRatio = costRatios["ta"] / float64(trials)
	cs.NRA.CostOptimalityRatio = costRatios["nra"] / float64(trials)
	cs.CA.CostOptimalityRatio = costRatios["ca"] / float64(trials)
	cs.ElapsedNs = int64(elapsed) / int64(trials)
	return cs, nil
}

// runCatalog loads a real CSV catalog through the hardened admission path and
// answers the multi-criteria top-k query over ascending index scans of every
// numeric column, once per requested k.
func runCatalog(path, keyCol string, lenient bool, ks []int, stdout io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	header, types, err := sniffCatalogTypes(data)
	if err != nil {
		return err
	}
	if keyCol == "" {
		keyCol = header[0]
	}
	colTypes := make(map[string]db.ColumnType, len(header))
	for _, h := range header {
		if h != keyCol {
			colTypes[h] = types[h]
		}
	}
	tbl, report, err := db.LoadCSVWith(path, bytes.NewReader(data), keyCol, colTypes, db.LoadOptions{
		Limits:  guard.DefaultLimits(),
		Lenient: lenient,
	})
	if err != nil {
		return err
	}
	for _, d := range report.Defects {
		fmt.Fprintf(os.Stderr, "# defect: %s\n", d)
	}
	if report.Dropped > 0 {
		fmt.Fprintf(os.Stderr, "# defect: and %d more defects not shown\n", report.Dropped)
	}

	var prefs []db.Preference
	for _, h := range header {
		if h != keyCol && types[h] != db.StringCol {
			prefs = append(prefs, db.Preference{Column: h, Direction: db.Ascending})
		}
	}
	if len(prefs) == 0 {
		return fmt.Errorf("catalog %s has no numeric columns to rank on", path)
	}
	cols := make([]string, len(prefs))
	for i, p := range prefs {
		cols[i] = p.Column
	}
	fmt.Fprintf(stdout, "catalog %s: %d rows, ranking on %s (ascending)\n",
		path, tbl.NumRows(), strings.Join(cols, ", "))
	for _, k := range ks {
		if k > tbl.NumRows() {
			continue
		}
		res, err := tbl.TopK(db.Query{Preferences: prefs, K: k})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "k=%d\n", k)
		for i, key := range res.Keys {
			fmt.Fprintf(stdout, "  %d. %s (median position %g)\n", i+1, key, res.MedianPositions[i])
		}
		fmt.Fprintf(stdout, "  # probes: %d of %d (optimality ratio %.2f)\n",
			res.Access.Total, res.FullScan.Total, res.OptimalityRatio)
	}
	return nil
}

// sniffCatalogTypes infers a column type for every header column by majority
// vote over the data rows: a column most of whose non-empty cells parse as
// integers is IntCol, else as floats FloatCol, else StringCol. Majority — not
// unanimity — so that one corrupted cell in a numeric column becomes a row
// defect at load time instead of silently demoting the whole column to
// strings. Rows the CSV reader cannot parse are skipped here; the hardened
// loader reports or rejects them afterwards.
func sniffCatalogTypes(data []byte) ([]string, map[string]db.ColumnType, error) {
	cr := csv.NewReader(bytes.NewReader(data))
	cr.TrimLeadingSpace = true
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("reading CSV header of catalog: %w", err)
	}
	nonempty := make([]int, len(header))
	ints := make([]int, len(header))
	floats := make([]int, len(header))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			continue
		}
		for i := 0; i < len(rec) && i < len(header); i++ {
			cell := strings.TrimSpace(rec[i])
			if cell == "" {
				continue
			}
			nonempty[i]++
			if _, err := strconv.ParseInt(cell, 10, 64); err == nil {
				ints[i]++
			}
			if _, err := strconv.ParseFloat(cell, 64); err == nil {
				floats[i]++
			}
		}
	}
	types := make(map[string]db.ColumnType, len(header))
	for i, h := range header {
		switch {
		case nonempty[i] > 0 && ints[i]*2 > nonempty[i]:
			types[h] = db.IntCol
		case nonempty[i] > 0 && floats[i]*2 > nonempty[i]:
			types[h] = db.FloatCol
		default:
			types[h] = db.StringCol
		}
	}
	return header, types, nil
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad integer list entry %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty integer list %q", csv)
	}
	return out, nil
}
