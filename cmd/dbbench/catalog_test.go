package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// corruptCatalog mixes clean rows with a non-integer stars cell (r2), a
// non-float price cell (r3), and a duplicate key (second r1). The majority of
// each numeric column still parses, so sniffing keeps stars=int, price=float.
const corruptCatalog = `name,stars,price,cuisine
r1,5,20.5,thai
r2,many,8.0,bbq
r3,4,cheap,deli
r1,3,9.9,sushi
r4,2,5.0,thai
r5,1,3.5,deli
`

func writeCatalog(t *testing.T, contents string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "catalog.csv")
	if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func captureStderr(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	defer func() { os.Stderr = old }()
	fn()
	w.Close()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestCatalogLenientLoadsAndRanks(t *testing.T) {
	path := writeCatalog(t, corruptCatalog)
	var out bytes.Buffer
	var err error
	stderr := captureStderr(t, func() {
		err = run([]string{"-catalog", path, "-lenient", "-k", "2"}, &out)
	})
	if err != nil {
		t.Fatalf("lenient catalog run failed: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "3 rows") {
		t.Errorf("want 3 surviving rows (r1, r4, r5):\n%s", got)
	}
	if !strings.Contains(got, "ranking on stars, price") {
		t.Errorf("numeric columns not sniffed:\n%s", got)
	}
	// Ascending on both columns: r5 (1 star, 3.5) beats r4 (2, 5.0).
	if !strings.Contains(got, "1. r5") || !strings.Contains(got, "2. r4") {
		t.Errorf("top-2 wrong:\n%s", got)
	}
	if n := strings.Count(stderr, "# defect:"); n != 3 {
		t.Errorf("want 3 defect lines (bad int, bad float, dup key), got %d:\n%s", n, stderr)
	}
}

func TestCatalogStrictRejectsCorruptRows(t *testing.T) {
	path := writeCatalog(t, corruptCatalog)
	var out bytes.Buffer
	err := run([]string{"-catalog", path, "-k", "1"}, &out)
	if err == nil {
		t.Fatal("strict mode accepted a corrupted catalog")
	}
	msg := err.Error()
	if strings.Contains(msg, "\n") {
		t.Errorf("diagnostic spans multiple lines: %q", msg)
	}
	if !strings.Contains(msg, `column "stars"`) {
		t.Errorf("diagnostic %q does not name the defective cell", msg)
	}
}

func TestCatalogErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-catalog", "/nonexistent/catalog.csv"}, &out); err == nil {
		t.Error("missing catalog file accepted")
	}
	textOnly := writeCatalog(t, "name,cuisine\nr1,thai\nr2,bbq\n")
	if err := run([]string{"-catalog", textOnly, "-k", "1"}, &out); err == nil {
		t.Error("catalog without numeric columns accepted")
	} else if !strings.Contains(err.Error(), "no numeric columns") {
		t.Errorf("unexpected diagnostic: %v", err)
	}
	empty := writeCatalog(t, "")
	if err := run([]string{"-catalog", empty}, &out); err == nil {
		t.Error("empty catalog accepted")
	}
}

func TestCatalogKeycolOverride(t *testing.T) {
	// With -keycol cuisine the name column sniffs to StringCol and is ignored;
	// keys must be unique so use distinct cuisines.
	path := writeCatalog(t, "name,stars,cuisine\nr1,2,thai\nr2,1,bbq\n")
	var out bytes.Buffer
	if err := run([]string{"-catalog", path, "-keycol", "cuisine", "-k", "1"}, &out); err != nil {
		t.Fatalf("keycol override failed: %v", err)
	}
	if !strings.Contains(out.String(), "1. bbq") {
		t.Errorf("winner should be keyed by cuisine:\n%s", out.String())
	}
}
