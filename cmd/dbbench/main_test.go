package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestRunStatsJSON(t *testing.T) {
	was := telemetry.Enabled()
	defer func() {
		if !was {
			telemetry.Disable()
		}
	}()
	var out bytes.Buffer
	args := []string{"-n", "120", "-m", "3", "-values", "4", "-k", "2,6", "-trials", "2", "-stats", "-trace"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	var doc statsDoc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(doc.Configs) != 2 {
		t.Fatalf("got %d configs, want 2", len(doc.Configs))
	}
	for _, c := range doc.Configs {
		if c.MedRank.Sequential <= 0 {
			t.Errorf("k=%d: MEDRANK sequential accesses %d, want positive", c.K, c.MedRank.Sequential)
		}
		if c.MedRank.Random != 0 {
			t.Errorf("k=%d: MEDRANK random accesses %d, want 0", c.K, c.MedRank.Random)
		}
		if c.TA.Random <= 0 {
			t.Errorf("k=%d: TA random accesses %d, want positive", c.K, c.TA.Random)
		}
		if c.MedRank.OptimalityRatio < 1 {
			t.Errorf("k=%d: MEDRANK optimality ratio %v < 1", c.K, c.MedRank.OptimalityRatio)
		}
		if c.NRA.Sequential <= 0 || c.NRA.Random != 0 {
			t.Errorf("k=%d: NRA profile %+v, want positive sequential and zero random", c.K, c.NRA)
		}
		if c.CA.Sequential <= 0 {
			t.Errorf("k=%d: CA sequential accesses %d, want positive", c.K, c.CA.Sequential)
		}
		// The equal-weights ratio against a sequential-only bound is only
		// sound for the no-random-access engines; the old report also priced
		// TA with it, which is the bug this sweep no longer has.
		if c.TA.OptimalityRatio != 0 || c.CA.OptimalityRatio != 0 {
			t.Errorf("k=%d: legacy ratio emitted for a random-access engine: ta=%v ca=%v",
				c.K, c.TA.OptimalityRatio, c.CA.OptimalityRatio)
		}
		if c.CostCertificate <= 0 || c.CostRatio != 10 {
			t.Errorf("k=%d: cost certificate %d at ratio %d, want positive at 10", c.K, c.CostCertificate, c.CostRatio)
		}
		for name, es := range map[string]engineStats{"medrank": c.MedRank, "ta": c.TA, "nra": c.NRA, "ca": c.CA} {
			if es.CostOptimalityRatio < 1 {
				t.Errorf("k=%d: %s cost-weighted optimality ratio %v < 1", c.K, name, es.CostOptimalityRatio)
			}
			if want := es.Sequential + 10*es.Random; es.MiddlewareCost != want {
				// Averaged fields; allow off-by-one from integer division.
				if diff := es.MiddlewareCost - want; diff < -10 || diff > 10 {
					t.Errorf("k=%d: %s middleware cost %d, want ~%d", c.K, name, es.MiddlewareCost, want)
				}
			}
		}
	}
	if len(doc.Telemetry.Counters) == 0 {
		t.Error("telemetry counter snapshot empty under -stats")
	}
	if len(doc.Trace) == 0 {
		t.Error("trace event log empty under -trace")
	}
}

func TestRunTableOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "60", "-m", "3", "-values", "3", "-k", "2", "-trials", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "elem probes") {
		t.Errorf("table header missing:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "x"},
		{"-k", "0"},
		{"-trials", "0"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 20,300")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 300 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	for _, bad := range []string{"", "x", "0", "-3", "1,,"} {
		if v, err := parseInts(bad); err == nil && bad != "1,," {
			t.Errorf("parseInts(%q) accepted: %v", bad, v)
		}
	}
	// Trailing commas are tolerated.
	if got, err := parseInts("5,"); err != nil || len(got) != 1 {
		t.Errorf("trailing comma: %v %v", got, err)
	}
}
