package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 20,300")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 300 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	for _, bad := range []string{"", "x", "0", "-3", "1,,"} {
		if v, err := parseInts(bad); err == nil && bad != "1,," {
			t.Errorf("parseInts(%q) accepted: %v", bad, v)
		}
	}
	// Trailing commas are tolerated.
	if got, err := parseInts("5,"); err != nil || len(got) != 1 {
		t.Errorf("trailing comma: %v %v", got, err)
	}
}
