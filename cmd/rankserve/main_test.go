package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-addr", "definitely-not-an-address:-1"}, io.Discard); err == nil {
		t.Error("unlistenable address accepted")
	}
}

// logBuffer is a concurrency-safe log sink the test can poll for the
// listen/drain lines run() emits.
type logBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *logBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

var listenLine = regexp.MustCompile(`listening on http://(\S+)`)

// TestRunDrainsOnInterrupt boots the real server on a free port, serves one
// real request, sends the process SIGINT, and requires a clean drain: run()
// returns nil and logs the drained line. The signal handler is registered
// before the listener exists, so once the server answers HTTP the INT is
// guaranteed to be caught.
func TestRunDrainsOnInterrupt(t *testing.T) {
	var logw logBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-grace", "5s"}, &logw)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never logged its address; log so far: %q", logw.String())
		}
		if m := listenLine.FindStringSubmatch(logw.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	resp, err := http.Post(fmt.Sprintf("http://%s/v1/tenants/t/catalogs/c/topk", addr),
		"application/json", strings.NewReader(`{"k": 1}`))
	if err != nil {
		t.Fatalf("request against live server: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound { // no catalog registered yet
		t.Errorf("topk on empty server = %d, want 404", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run after SIGINT = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain within 10s of SIGINT")
	}
	log := logw.String()
	if !strings.Contains(log, "draining") || !strings.Contains(log, "drained") {
		t.Errorf("drain lines missing from log: %q", log)
	}
}
