// Command rankserve is the multi-tenant ranking-as-a-service front end: a
// stdlib net/http JSON API over the repo's aggregation engines. Tenants
// register catalogs of ranking lists (strict or lenient ingestion with
// deterministic repair), then run top-k queries (MEDRANK or the TA-style
// baseline, optionally in resilient degraded mode over fault-wrapped
// sources) and full aggregations (median scores, best-of-inputs, local
// Kemenization) against them. One sharded distance cache and one
// GOMAXPROCS-sized worker gate are shared across tenants; guard.Limits
// admission rejects oversized inputs with structured defect JSON.
//
// Endpoints (see README "Running the server" for curl examples):
//
//	GET    /healthz
//	GET    /stats
//	GET    /metrics                 (Prometheus text exposition)
//	GET    /debug/traces[?trace_id=]
//	GET    /debug/vars, /debug/pprof/
//	PUT    /v1/tenants/{t}/catalogs/{c}?mode=strict|lenient&repair=drop|complete
//	POST   /v1/tenants/{t}/catalogs/{c}/rankings
//	GET    /v1/tenants/{t}/catalogs/{c}
//	DELETE /v1/tenants/{t}/catalogs/{c}
//	GET    /v1/tenants/{t}/catalogs
//	DELETE /v1/tenants/{t}
//	POST   /v1/tenants/{t}/catalogs/{c}/topk
//	POST   /v1/tenants/{t}/catalogs/{c}/aggregate
//
// Overload protection (see README "Overload & degradation"): per-tenant
// token-bucket rate limiting (-rate/-rate-burst), a bounded LIFO wait queue
// behind the -workers engine slots (-queue-depth), per-request deadline
// budgets (X-Deadline-Ms header, -default-deadline fallback, -max-deadline
// cap), and a degradation ladder that trades answer exactness for latency
// under pressure (exact TA → (1+θ)-approximate TA with -approx-theta →
// cached stale answer younger than -stale-ttl). Shed requests get 429 with
// Retry-After; degraded answers carry a ladder annotation.
//
// Shutdown is graceful: SIGINT/SIGTERM begins a drain — queued-but-unstarted
// requests fail fast with 503, the listener stops accepting, and in-flight
// queries get -grace to finish; queries still running after the grace window
// are canceled through their contexts.
//
// Usage:
//
//	rankserve [-addr :8080] [-max-tenants 64] [-max-catalogs 64]
//	          [-max-body 8388608] [-max-rankings N] [-max-elements N]
//	          [-cache N] [-workers N] [-grace 10s]
//	          [-queue-depth 256] [-rate 0] [-rate-burst 0]
//	          [-default-deadline 0] [-max-deadline 0]
//	          [-approx-theta 0.5] [-stale-ttl 5m]
//	          [-trace-sample 0.1] [-traces 64] [-access-log path|-]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/guard"
	"repro/internal/service"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rankserve:", err)
		os.Exit(1)
	}
}

func run(args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("rankserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free one)")
	maxTenants := fs.Int("max-tenants", 64, "maximum concurrent tenants")
	maxCatalogs := fs.Int("max-catalogs", 64, "maximum catalogs per tenant")
	maxBody := fs.Int64("max-body", 8<<20, "maximum request body bytes")
	maxRankings := fs.Int("max-rankings", 0, "maximum ranking lists per catalog (0 = guard default)")
	maxElements := fs.Int("max-elements", 0, "maximum domain size per catalog (0 = guard default)")
	cacheCap := fs.Int("cache", 0, "shared distance cache capacity in entries (0 = default)")
	workers := fs.Int("workers", 0, "concurrent query slots (0 = GOMAXPROCS)")
	grace := fs.Duration("grace", 10*time.Second, "shutdown drain window for in-flight queries")
	queueDepth := fs.Int("queue-depth", 256, "bounded wait queue behind the engine slots; arrivals past it shed with 429")
	rate := fs.Float64("rate", 0, "per-tenant query rate limit in req/s (0 = off)")
	rateBurst := fs.Int("rate-burst", 0, "per-tenant token-bucket burst (0 = 2x rate)")
	defaultDeadline := fs.Duration("default-deadline", 0, "deadline budget for requests without an X-Deadline-Ms header (0 = none)")
	maxDeadline := fs.Duration("max-deadline", 0, "cap on any request's deadline budget (0 = uncapped)")
	approxTheta := fs.Float64("approx-theta", 0.5, "theta of the degradation ladder's (1+theta)-approximate top-k rung")
	staleTTL := fs.Duration("stale-ttl", 5*time.Minute, "how long a cached exact answer may serve as the ladder's stale rung")
	traceSample := fs.Float64("trace-sample", 0.1, "fraction of requests that collect a span tree (deterministic in the trace ID; X-Trace-Sample: 1 forces)")
	traces := fs.Int("traces", 64, "recent-traces buffer capacity behind GET /debug/traces")
	accessLog := fs.String("access-log", "", "structured JSON access-log destination: a file path, or - for stderr (empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	limits := guard.DefaultLimits()
	if *maxRankings > 0 {
		limits.MaxRankings = *maxRankings
	}
	if *maxElements > 0 {
		limits.MaxElements = *maxElements
	}

	var logSink io.Writer
	var logClose func() error
	switch *accessLog {
	case "":
	case "-":
		logSink = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("opening access log: %w", err)
		}
		logSink = f
		logClose = f.Close
	}
	if logClose != nil {
		defer logClose() //nolint:errcheck // best-effort close on exit
	}

	// A server wants its instruments live: enable the gated telemetry layer
	// and publish both registries — the process-wide one under "rankties",
	// the service's endpoint-latency registry under "rankties.server" — so
	// /debug/vars carries both without colliding. The Prometheus exposition
	// of the same instruments (plus the labeled per-tenant families) lives at
	// GET /metrics; span trees of sampled requests at GET /debug/traces.
	telemetry.Enable()
	telemetry.SetRecentTraceCapacity(*traces)
	svc := service.New(service.Config{
		MaxTenants:           *maxTenants,
		MaxCatalogsPerTenant: *maxCatalogs,
		MaxBodyBytes:         *maxBody,
		Limits:               limits,
		CacheCapacity:        *cacheCap,
		Workers:              *workers,
		QueueDepth:           *queueDepth,
		RatePerSec:           *rate,
		RateBurst:            *rateBurst,
		DefaultDeadline:      *defaultDeadline,
		MaxDeadline:          *maxDeadline,
		ApproxTheta:          *approxTheta,
		StaleTTL:             *staleTTL,
		TraceSampleRate:      *traceSample,
		AccessLog:            logSink,
	})
	telemetry.PublishExpvar()
	telemetry.PublishExpvarNamed("rankties.server", svc.Registry())

	// Register the signal handler before the listener exists: once a client
	// can reach the server, SIGINT is already guaranteed to drain rather
	// than kill.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	// baseCtx parents every request context; canceling it after the grace
	// window threads cancellation into in-flight engine runs (MedRank,
	// ThresholdTopK, and the fallible variants all honor their contexts).
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}

	serveErr := make(chan error, 1)
	go func() {
		err := srv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		serveErr <- err
	}()
	fmt.Fprintf(logw, "rankserve: listening on http://%s\n", ln.Addr())

	select {
	case err := <-serveErr:
		return err
	case <-sigCtx.Done():
	}
	stop()
	fmt.Fprintf(logw, "rankserve: draining (grace %s)\n", *grace)

	// Drain the admission queue before the listener: queued-but-unstarted
	// requests fail fast with 503 instead of competing with the in-flight
	// ones for the grace window, and new arrivals are refused outright.
	svc.BeginDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	shutErr := srv.Shutdown(shutCtx)
	cancelBase() // cancel any queries that outlived the grace window
	if errors.Is(shutErr, context.DeadlineExceeded) {
		// In-flight queries were canceled rather than drained; the engines
		// unwind through their contexts, so this is still a clean exit.
		fmt.Fprintln(logw, "rankserve: grace window expired; canceled remaining queries")
		shutErr = nil
	}
	if err := <-serveErr; err != nil {
		return err
	}
	fmt.Fprintln(logw, "rankserve: drained")
	return shutErr
}
