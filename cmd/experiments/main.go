// Command experiments regenerates every reproduction table of the paper's
// claims (see DESIGN.md for the experiment index and EXPERIMENTS.md for
// recorded results).
//
// Usage:
//
//	experiments [-seed S] [-md] [-list] [E1 E2 ...]
//
// With no arguments it runs the full registry in order. -md emits markdown
// tables (the format used in EXPERIMENTS.md) instead of aligned text; -list
// prints the registry without running anything.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	seed := fs.Int64("seed", 2004, "random seed (2004 reproduces EXPERIMENTS.md)")
	md := fs.Bool("md", false, "emit markdown tables")
	list := fs.Bool("list", false, "list the experiment registry and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, spec := range experiments.Registry {
			fmt.Fprintf(stdout, "%-4s %s\n", spec.ID, spec.Title)
		}
		return nil
	}
	ids := fs.Args()
	if len(ids) == 0 {
		for _, spec := range experiments.Registry {
			ids = append(ids, spec.ID)
		}
	}
	for _, id := range ids {
		tbl, err := experiments.Run(id, *seed)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *md {
			fmt.Fprintln(stdout, tbl.Markdown())
			continue
		}
		if err := tbl.Render(stdout); err != nil {
			return err
		}
	}
	return nil
}
