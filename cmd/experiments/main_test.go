package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/guard"
)

func TestListFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E7", "E13"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("registry listing missing %s:\n%s", id, out.String())
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var out bytes.Buffer
	if err := run([]string{"-seed", "7", "E10"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E10 —") {
		t.Errorf("missing table header:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-md", "E10"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "### E10") {
		t.Errorf("missing markdown header:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"E999"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-bogusflag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}

// A panicking experiment body must come back from the CLI as an ordinary
// single-line error (the one-line diagnostic main prints before exiting
// non-zero), not crash the process.
func TestPanickingExperimentOneLineDiagnostic(t *testing.T) {
	experiments.Registry = append(experiments.Registry, experiments.Spec{
		ID:    "EPANIC",
		Title: "deliberately panicking experiment",
		Run:   func(seed int64) (*experiments.Table, error) { panic("experiment bug") },
	})
	defer func() { experiments.Registry = experiments.Registry[:len(experiments.Registry)-1] }()

	var out bytes.Buffer
	err := run([]string{"EPANIC"}, &out)
	if err == nil {
		t.Fatal("panicking experiment reported success")
	}
	if _, ok := guard.Recovered(err); !ok {
		t.Errorf("err = %v, want wrapped *guard.PanicError", err)
	}
	msg := err.Error()
	if !strings.HasPrefix(msg, "EPANIC:") || !strings.Contains(msg, "experiment bug") {
		t.Errorf("diagnostic does not name the failed experiment: %q", msg)
	}
	if strings.Contains(msg, "\n") {
		t.Errorf("diagnostic spans multiple lines: %q", msg)
	}
}
