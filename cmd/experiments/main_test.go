package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E7", "E13"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("registry listing missing %s:\n%s", id, out.String())
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var out bytes.Buffer
	if err := run([]string{"-seed", "7", "E10"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E10 —") {
		t.Errorf("missing table header:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-md", "E10"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "### E10") {
		t.Errorf("missing markdown header:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"E999"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-bogusflag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}
