// Command benchjson measures the retained allocating metric engines against
// the workspace kernels, plus the top-k engines over plain cursors and over
// the fallible-source stack (healthy, retrying, and degraded — including the
// interval-certification engines NRA and CA, BENCH_PR10.json), and writes the
// results as JSON, one record per benchmark with ns/op, bytes/op, and
// allocs/op. It exists so allocation and resilience-overhead regressions show
// up as a diffable artifact (BENCH_PR1.json, BENCH_PR3.json) rather than only
// in ad-hoc `go test -bench` output.
//
// It also measures the pairwise-distance cache on a duplicate-heavy ensemble
// (-dup distinct rankings cloned out to m voters): matrix sweeps and
// best-of-inputs scoring with and without memoization, with the cache's
// hit/miss/eviction counters — cross-checked against the telemetry registry
// mirrors — reported in a "cache" section of the artifact (BENCH_PR5.json).
//
// The "telemetry_overhead" section prices the tracing layer on the MedRank
// source engine: telemetry disabled (baseline), enabled with no trace in the
// context (the unsampled fast path every production request pays), and
// enabled with a sampled trace collecting the full span tree. CI gates on
// unsampled_overhead staying under 5% (BENCH_PR7.json).
//
// Usage:
//
//	benchjson [-out BENCH_PR1.json] [-n 1000] [-m 64] [-maxbucket 6] [-seed 42] [-dup 8]
//
// With no -out flag the JSON goes to stdout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"testing"

	"repro/internal/aggregate"
	"repro/internal/cache"
	"repro/internal/envstamp"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/randrank"
	"repro/internal/ranking"
	"repro/internal/telemetry"
	"repro/internal/topk"
)

type record struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// report is the top-level JSON document. Schema:
//
//   - go_version, gomaxprocs, commit: the environment stamp, so two artifact
//     files are only compared when they come from comparable runs. commit is
//     the vcs revision baked in by the Go linker ("+dirty" appended when the
//     worktree had uncommitted changes), empty when built outside a checkout.
//   - n, m, max_bucket, seed: the workload parameters.
//   - benchmarks: one record per engine, with ns/op averaged over the
//     iteration count testing.Benchmark settled on.
type report struct {
	envstamp.Stamp
	N           int          `json:"n"`
	M           int          `json:"m"`
	MaxBucket   int          `json:"max_bucket"`
	Seed        int64        `json:"seed"`
	DupDistinct int          `json:"dup_distinct"`
	Benchmarks  []record     `json:"benchmarks"`
	Cache       *cacheReport `json:"cache,omitempty"`

	TelemetryOverhead *overheadReport `json:"telemetry_overhead,omitempty"`
}

// overheadReport prices the tracing layer on one engine op (MedRank over
// healthy sources). The overheads are fractions relative to the disabled
// baseline: (mode - baseline) / baseline, so 0.05 means 5% slower. Negative
// values are measurement noise on an overhead too small to resolve.
type overheadReport struct {
	BaselineNsPerOp   float64 `json:"baseline_ns_per_op"`
	UnsampledNsPerOp  float64 `json:"unsampled_ns_per_op"`
	SampledNsPerOp    float64 `json:"sampled_ns_per_op"`
	UnsampledOverhead float64 `json:"unsampled_overhead"`
	SampledOverhead   float64 `json:"sampled_overhead"`
}

// cacheReport summarizes the distance cache's behavior over the dup_* cache
// benchmarks: the per-cache counters, the derived hit rate, and the telemetry
// registry's gated mirrors (deltas over the same window, as an independent
// cross-check that instrumentation is wired through).
type cacheReport struct {
	cache.Stats
	HitRate         float64 `json:"hit_rate"`
	TelemetryHits   int64   `json:"telemetry_hits"`
	TelemetryMisses int64   `json:"telemetry_misses"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("out", "", "write JSON to this file instead of stdout")
	n := fs.Int("n", 1000, "domain size of each ranking")
	m := fs.Int("m", 64, "ensemble size for the matrix/sum sweeps")
	maxBucket := fs.Int("maxbucket", 6, "bucket-size cap of the random bucket orders")
	seed := fs.Int64("seed", 42, "random seed")
	dup := fs.Int("dup", 8, "distinct rankings in the duplicate-heavy cache ensemble")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 || *m < 2 || *maxBucket < 1 || *dup < 1 {
		return fmt.Errorf("need n >= 1, m >= 2, maxbucket >= 1, dup >= 1")
	}
	// Create the output file before the benchmarks run, so a bad path fails
	// in milliseconds rather than after a minute of measurement.
	dst := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}

	rng := rand.New(rand.NewSource(*seed))
	ens := make([]*ranking.PartialRanking, *m)
	for i := range ens {
		ens[i] = randrank.Partial(rng, *n, *maxBucket)
	}
	a, b := ens[0], ens[1]

	kprofAlloc := func(x, y *ranking.PartialRanking) (float64, error) {
		pc, err := metrics.CountPairsAlloc(x, y)
		if err != nil {
			return 0, err
		}
		return metrics.KProfFromCounts(pc), nil
	}

	rep := report{
		Stamp:     envstamp.New(),
		N:         *n,
		M:         *m,
		MaxBucket: *maxBucket,
		Seed:      *seed,
	}
	var firstErr error
	bench := func(name string, body func() error) {
		if firstErr != nil {
			return
		}
		res := testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				if err := body(); err != nil {
					firstErr = fmt.Errorf("%s: %w", name, err)
					tb.Fatal(err)
				}
			}
		})
		rep.Benchmarks = append(rep.Benchmarks, record{
			Name:        name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		})
	}

	ws := metrics.NewWorkspace()
	bench("countpairs/alloc", func() error { _, err := metrics.CountPairsAlloc(a, b); return err })
	bench("countpairs/workspace", func() error { _, err := ws.CountPairs(a, b); return err })
	bench("fhaus/refinement", func() error { _, err := metrics.FHausViaRefinement(a, b); return err })
	bench("fhaus/workspace", func() error { _, err := ws.FHaus(a, b); return err })
	bench("distancematrix_kprof/alloc", func() error { _, err := metrics.DistanceMatrix(ens, kprofAlloc); return err })
	bench("distancematrix_kprof/workspace", func() error { _, err := metrics.DistanceMatrixWith(ens, metrics.KProfWS); return err })
	bench("sumdistance_kprof/alloc", func() error { _, err := aggregate.SumDistance(a, ens, kprofAlloc); return err })
	bench("sumdistance_kprof/workspace", func() error { _, err := aggregate.SumDistanceWith(ws, a, ens, metrics.KProfWS); return err })
	bench("compareall/workspace", func() error { _, err := metrics.CompareAll(ens); return err })

	// Top-k engine paths: the infallible cursor engine, the fallible-source
	// engine on healthy sources (the abstraction overhead), and the fault
	// paths (retry absorption, list death + rebuild). Sources are stateful,
	// so each op builds its own stack; the cursor benchmark pays the same
	// per-op setup implicitly inside MedRank.
	const topkM, topkK = 5, 10
	topkEns := randrank.CatalogEnsemble(rng, *n, topkM, 8, 1.0, 1.0).Rankings
	newSources := func(planFor func(i int) *faults.Plan, retry bool) ([]faults.Source, *telemetry.AccessAccountant) {
		acc := telemetry.NewAccessAccountant(topkM)
		srcs := make([]faults.Source, topkM)
		for i, r := range topkEns {
			s := topk.NewListSource(r, acc, i)
			if plan := planFor(i); plan != nil {
				p := *plan
				p.Seed = *seed + int64(i)
				p.Sleeper = &faults.FakeSleeper{}
				s = faults.Inject(s, p)
			}
			if retry {
				pol := faults.DefaultRetryPolicy()
				pol.JitterSeed = *seed
				pol.Sleeper = &faults.FakeSleeper{}
				s = faults.WithRetry(s, pol, acc, i)
			}
			srcs[i] = s
		}
		return srcs, acc
	}
	noPlan := func(int) *faults.Plan { return nil }
	ctx := context.Background()
	bench("medrank/cursor", func() error {
		_, err := topk.MedRank(topkEns, topkK, topk.RoundRobin)
		return err
	})
	bench("medrank/source", func() error {
		srcs, acc := newSources(noPlan, false)
		_, err := topk.MedRankOver(ctx, srcs, topkK, topk.RoundRobin, acc)
		return err
	})
	bench("medrank/source_retry", func() error {
		srcs, acc := newSources(func(int) *faults.Plan {
			return &faults.Plan{TransientRate: 0.02}
		}, true)
		_, err := topk.MedRankOver(ctx, srcs, topkK, topk.RoundRobin, acc)
		return err
	})
	bench("medrank/source_degraded", func() error {
		// Kill one list on its second access; the engine rebuilds over the
		// four survivors and finishes degraded.
		srcs, acc := newSources(func(i int) *faults.Plan {
			if i != 0 {
				return nil
			}
			return &faults.Plan{DeathAfter: 1}
		}, false)
		_, err := topk.MedRankOver(ctx, srcs, topkK, topk.RoundRobin, acc)
		return err
	})
	bench("ta/source", func() error {
		srcs, acc := newSources(noPlan, false)
		_, err := topk.ThresholdTopKOver(ctx, srcs, topkK, acc)
		return err
	})
	bench("nra/source", func() error {
		srcs, acc := newSources(noPlan, false)
		_, err := topk.NRAOver(ctx, srcs, topkK, acc)
		return err
	})
	bench("nra/source_degraded", func() error {
		srcs, acc := newSources(func(i int) *faults.Plan {
			if i != 0 {
				return nil
			}
			return &faults.Plan{DeathAfter: 1}
		}, false)
		_, err := topk.NRAOver(ctx, srcs, topkK, acc)
		return err
	})
	bench("ca/source", func() error {
		srcs, acc := newSources(noPlan, false)
		_, err := topk.CAOver(ctx, srcs, topkK, 10, acc)
		return err
	})

	// Telemetry overhead: the same healthy MedRank op measured three ways.
	// This section must run before the cache section enables telemetry, so
	// the baseline really is the disabled fast path. benchNs reuses bench()
	// (the records land in the benchmarks list too) and hands back the ns/op
	// of the record it just appended.
	benchNs := func(name string, body func() error) float64 {
		bench(name, body)
		if firstErr != nil || len(rep.Benchmarks) == 0 {
			return 0
		}
		return rep.Benchmarks[len(rep.Benchmarks)-1].NsPerOp
	}
	medrankOp := func(opCtx context.Context) error {
		srcs, acc := newSources(noPlan, false)
		_, err := topk.MedRankOver(opCtx, srcs, topkK, topk.RoundRobin, acc)
		return err
	}
	telemetry.Disable()
	baselineNs := benchNs("telemetry/medrank_disabled", func() error {
		return medrankOp(ctx)
	})
	telemetry.Enable()
	unsampledNs := benchNs("telemetry/medrank_unsampled", func() error {
		return medrankOp(ctx)
	})
	var traceID uint64
	sampledNs := benchNs("telemetry/medrank_sampled", func() error {
		traceID++
		tctx := telemetry.WithTrace(ctx, traceID, true)
		if err := medrankOp(tctx); err != nil {
			return err
		}
		telemetry.FinishTrace(tctx, telemetry.TraceMeta{Endpoint: "bench"})
		return nil
	})
	if baselineNs > 0 {
		rep.TelemetryOverhead = &overheadReport{
			BaselineNsPerOp:   baselineNs,
			UnsampledNsPerOp:  unsampledNs,
			SampledNsPerOp:    sampledNs,
			UnsampledOverhead: (unsampledNs - baselineNs) / baselineNs,
			SampledOverhead:   (sampledNs - baselineNs) / baselineNs,
		}
	}

	// Duplicate-heavy cache benchmarks: -dup distinct Mallows voters cloned
	// out to m rankings. Clones are distinct structs with equal content, so
	// cache hits come from fingerprint equality, exactly as they would for
	// re-ingested votes in production. Telemetry is enabled first — both the
	// cached and uncached paths then pay the same instrumentation cost, and
	// the registry mirrors of the cache counters get exercised.
	rep.DupDistinct = *dup
	telemetry.Enable()
	base, _ := randrank.MallowsEnsemble(rng, *n, *dup, 1.0)
	dupEns := make([]*ranking.PartialRanking, *m)
	for i := range dupEns {
		dupEns[i] = base[rng.Intn(*dup)].Clone()
	}
	benchCache := cache.New(0)
	telHits := telemetry.GetCounter("cache.distance.hits")
	telMisses := telemetry.GetCounter("cache.distance.misses")
	telHits0, telMisses0 := telHits.Value(), telMisses.Value()
	cachedKProf := metrics.CachedKProf(benchCache)
	bench("distancematrix_kprof/dup_uncached", func() error {
		_, err := metrics.DistanceMatrixWith(dupEns, metrics.KProfWS)
		return err
	})
	bench("distancematrix_kprof/dup_cached", func() error {
		_, err := metrics.DistanceMatrixWith(dupEns, cachedKProf)
		return err
	})
	bench("bestofinputs_kprof/dup_serial", func() error {
		_, _, _, err := aggregate.BestOfInputsWith(ws, dupEns, metrics.KProfWS)
		return err
	})
	bench("bestofinputs_kprof/dup_parallel", func() error {
		_, _, _, err := aggregate.BestOfInputsParallel(dupEns, metrics.KProfWS)
		return err
	})
	bench("bestofinputs_kprof/dup_parallel_cached", func() error {
		_, _, _, err := aggregate.BestOfInputsParallel(dupEns, cachedKProf)
		return err
	})
	st := benchCache.Stats()
	rep.Cache = &cacheReport{
		Stats:           st,
		HitRate:         st.HitRate(),
		TelemetryHits:   telHits.Value() - telHits0,
		TelemetryMisses: telMisses.Value() - telMisses0,
	}
	if firstErr != nil {
		return firstErr
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = dst.Write(buf)
	return err
}
