package main

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"
)

func TestRunEmitsAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	var out bytes.Buffer
	// Tiny sizes: each testing.Benchmark call still runs for ~1s, so this
	// test is dominated by benchmark wall clock, not problem size.
	if err := run([]string{"-n", "40", "-m", "4", "-maxbucket", "3", "-dup", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if rep.N != 40 || rep.M != 4 {
		t.Errorf("header = %+v", rep)
	}
	if rep.GoVersion != runtime.Version() {
		t.Errorf("go_version = %q, want %q", rep.GoVersion, runtime.Version())
	}
	if rep.GOMAXPROCS < 1 {
		t.Errorf("gomaxprocs = %d", rep.GOMAXPROCS)
	}
	want := map[string]bool{
		"countpairs/alloc":               false,
		"countpairs/workspace":           false,
		"fhaus/refinement":               false,
		"fhaus/workspace":                false,
		"distancematrix_kprof/alloc":     false,
		"distancematrix_kprof/workspace": false,
		"sumdistance_kprof/alloc":        false,
		"sumdistance_kprof/workspace":    false,
		"compareall/workspace":           false,
		"medrank/cursor":                 false,
		"medrank/source":                 false,
		"medrank/source_retry":           false,
		"medrank/source_degraded":        false,
		"ta/source":                      false,
		"nra/source":                     false,
		"nra/source_degraded":            false,
		"ca/source":                      false,

		"distancematrix_kprof/dup_uncached":      false,
		"distancematrix_kprof/dup_cached":        false,
		"bestofinputs_kprof/dup_serial":          false,
		"bestofinputs_kprof/dup_parallel":        false,
		"bestofinputs_kprof/dup_parallel_cached": false,

		"telemetry/medrank_disabled":  false,
		"telemetry/medrank_unsampled": false,
		"telemetry/medrank_sampled":   false,
	}
	for _, r := range rep.Benchmarks {
		if _, ok := want[r.Name]; !ok {
			t.Errorf("unexpected benchmark %q", r.Name)
		}
		want[r.Name] = true
		if r.Iterations < 1 || r.NsPerOp <= 0 {
			t.Errorf("%s: implausible result %+v", r.Name, r)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("missing benchmark %q", name)
		}
	}
	if rep.Cache == nil {
		t.Fatal("missing cache section")
	}
	if rep.Cache.Hits <= 0 || rep.Cache.HitRate <= 0 || rep.Cache.HitRate > 1 {
		t.Errorf("implausible cache stats %+v", rep.Cache)
	}
	if rep.Cache.TelemetryHits != rep.Cache.Hits || rep.Cache.TelemetryMisses != rep.Cache.Misses {
		t.Errorf("telemetry mirrors diverged from cache counters: %+v", rep.Cache)
	}
	if rep.TelemetryOverhead == nil {
		t.Fatal("missing telemetry_overhead section")
	}
	to := rep.TelemetryOverhead
	if to.BaselineNsPerOp <= 0 || to.UnsampledNsPerOp <= 0 || to.SampledNsPerOp <= 0 {
		t.Errorf("implausible overhead measurements %+v", to)
	}
	// The overheads are noisy at this problem size; only pin the arithmetic
	// that derives them from the measured rows.
	if got := (to.UnsampledNsPerOp - to.BaselineNsPerOp) / to.BaselineNsPerOp; got != to.UnsampledOverhead {
		t.Errorf("unsampled_overhead %v inconsistent with its rows (want %v)", to.UnsampledOverhead, got)
	}
	if got := (to.SampledNsPerOp - to.BaselineNsPerOp) / to.BaselineNsPerOp; got != to.SampledOverhead {
		t.Errorf("sampled_overhead %v inconsistent with its rows (want %v)", to.SampledOverhead, got)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "0"}, &out); err == nil {
		t.Error("n=0 accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}
