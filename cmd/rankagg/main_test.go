package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `sushi thai | bbq | deli
bbq | sushi | thai deli
thai | deli | sushi bbq
`

func runCLI(t *testing.T, args []string, stdin string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, strings.NewReader(stdin), &out); err != nil {
		t.Fatalf("run(%v) failed: %v", args, err)
	}
	return out.String()
}

func TestDist(t *testing.T) {
	out := runCLI(t, []string{"dist"}, sample)
	for _, want := range []string{"Kprof", "Fprof", "KHaus", "FHaus", "K^(0.5)", "gamma"} {
		if !strings.Contains(out, want) {
			t.Errorf("dist output missing %q:\n%s", want, out)
		}
	}
}

func TestAggMethods(t *testing.T) {
	for _, method := range []string{"median", "dp", "borda", "mc4", "footrule-opt"} {
		out := runCLI(t, []string{"agg", "-method", method}, sample)
		if !strings.Contains(out, "sushi") || !strings.Contains(out, "objective") {
			t.Errorf("agg %s output wrong:\n%s", method, out)
		}
	}
}

func TestTopK(t *testing.T) {
	out := runCLI(t, []string{"topk", "-k", "2"}, sample)
	if !strings.Contains(out, "1. ") || !strings.Contains(out, "probes") {
		t.Errorf("topk output wrong:\n%s", out)
	}
}

func TestTopKStats(t *testing.T) {
	out := runCLI(t, []string{"topk", "-k", "2", "-stats"}, sample)
	var doc struct {
		Winners         []string `json:"winners"`
		Access          struct{ Total, Random int }
		FullScan        int     `json:"full_scan"`
		Certificate     int     `json:"certificate"`
		OptimalityRatio float64 `json:"optimality_ratio"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("topk -stats output is not JSON: %v\n%s", err, out)
	}
	if len(doc.Winners) != 2 || doc.Access.Total <= 0 || doc.Access.Random != 0 {
		t.Errorf("stats shape wrong: %+v", doc)
	}
	if doc.Certificate <= 0 || doc.OptimalityRatio < 1 {
		t.Errorf("certificate %d ratio %v", doc.Certificate, doc.OptimalityRatio)
	}
}

func TestAggTrace(t *testing.T) {
	out := runCLI(t, []string{"agg", "-method", "dp", "-trace"}, sample)
	if !strings.Contains(out, "# trace: aggregate.optimal_partial") {
		t.Errorf("agg -trace missing span timing line:\n%s", out)
	}
}

func TestGenRoundTrips(t *testing.T) {
	out := runCLI(t, []string{"gen", "-n", "8", "-m", "4", "-seed", "9"}, "")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("gen produced %d lines:\n%s", len(lines), out)
	}
	// Generated output must parse back through dist.
	_ = runCLI(t, []string{"dist"}, out)

	// Mallows-coarsened variant.
	out = runCLI(t, []string{"gen", "-n", "8", "-m", "3", "-theta", "1.5"}, "")
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Fatalf("gen -theta produced:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"nope"},
		{"dist"},                      // with empty stdin: < 2 rankings
		{"agg", "-method", "unknown"}, // bad method
		{"topk", "-k", "99"},          // k > n
	}
	stdins := []string{"", "", "", sample, sample}
	for i, args := range cases {
		var out bytes.Buffer
		if err := run(args, strings.NewReader(stdins[i]), &out); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestCompare(t *testing.T) {
	out := runCLI(t, []string{"compare"}, sample)
	for _, want := range []string{"method", "median-full", "borda", "mc4", "best-input", "sum Kprof"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
}

func TestCorr(t *testing.T) {
	out := runCLI(t, []string{"corr"}, sample)
	for _, want := range []string{"tau-a", "tau-b", "rho", "gamma", "Kprof~", "Fprof~"} {
		if !strings.Contains(out, want) {
			t.Errorf("corr output missing %q:\n%s", want, out)
		}
	}
	// Undefined coefficients are reported, not fatal.
	degenerate := "a b c\na b c\n"
	out = runCLI(t, []string{"corr"}, degenerate)
	if !strings.Contains(out, "undefined") {
		t.Errorf("corr on single-bucket rankings should report undefined:\n%s", out)
	}
}

func TestEval(t *testing.T) {
	out := runCLI(t, []string{"eval"}, sample)
	for _, want := range []string{"candidate vs 2 inputs", "sum Kprof", "sum FHaus"} {
		if !strings.Contains(out, want) {
			t.Errorf("eval output missing %q:\n%s", want, out)
		}
	}
	var buf bytes.Buffer
	if err := run([]string{"eval"}, strings.NewReader("a b\n"), &buf); err == nil {
		t.Error("eval with a single line accepted")
	}
}
