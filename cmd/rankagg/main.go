// Command rankagg compares and aggregates rankings with ties from the
// command line, using the text codec of the rankties library: one ranking
// per line, buckets best-first separated by "|", elements separated by
// whitespace. Lines starting with "#" are comments.
//
// Usage:
//
//	rankagg dist  [-file F]            distances between the first two rankings
//	rankagg agg   [-file F] [-method M] aggregate all rankings (median | dp | borda | mc4 | footrule-opt)
//	              [-robust M] [-trim K]  robust aggregation (trimmed-borda | weighted-median | minmax),
//	                                     dropping the K least-reliable rankings; weights go to stderr
//	rankagg topk  [-file F] -k K [-timeout D]  streaming median top-k with access stats
//	rankagg gen   -n N -m M [...]       generate a random ensemble
//
// Rankings are read from the file given by -file, or stdin by default.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/metrics"
	"repro/internal/randrank"
	"repro/internal/ranking"
	"repro/internal/robust"
	"repro/internal/telemetry"
	"repro/internal/topk"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rankagg:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: rankagg <dist|agg|topk|gen|compare|corr|eval> [flags]")
	}
	switch args[0] {
	case "dist":
		return cmdDist(args[1:], stdin, stdout)
	case "agg":
		return cmdAgg(args[1:], stdin, stdout)
	case "topk":
		return cmdTopK(args[1:], stdin, stdout)
	case "gen":
		return cmdGen(args[1:], stdout)
	case "compare":
		return cmdCompare(args[1:], stdin, stdout)
	case "corr":
		return cmdCorr(args[1:], stdin, stdout)
	case "eval":
		return cmdEval(args[1:], stdin, stdout)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// inputFlags are the shared flags of every ranking-reading subcommand: the
// input file plus the admission mode. Strict (the default) aborts on the
// first malformed line; -lenient repairs or drops defective lines under
// guard.DefaultLimits and reports each one as a "# defect:" line on stderr.
type inputFlags struct {
	file    *string
	lenient *bool
	repair  *string
}

func addInputFlags(fs *flag.FlagSet) *inputFlags {
	return &inputFlags{
		file:    fs.String("file", "", "rankings file (default stdin)"),
		lenient: fs.Bool("lenient", false, "repair or drop malformed lines instead of aborting; defects become '# defect:' lines on stderr"),
		repair:  fs.String("repair", "drop", "lenient repair policy for lines covering a subset of the domain: drop | complete"),
	}
}

func (in *inputFlags) read(stdin io.Reader) ([]*ranking.PartialRanking, *ranking.Domain, error) {
	policy, err := guard.ParseRepairPolicy(*in.repair)
	if err != nil {
		return nil, nil, err
	}
	r := stdin
	if *in.file != "" {
		f, err := os.Open(*in.file)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		r = f
	}
	rs, dom, report, err := ranking.ParseLinesWith(r, ranking.ParseOptions{
		Limits:  guard.DefaultLimits(),
		Lenient: *in.lenient,
		Repair:  policy,
	})
	if err != nil {
		return nil, nil, err
	}
	for _, d := range report.Defects {
		fmt.Fprintf(os.Stderr, "# defect: %s\n", d)
	}
	if report.Dropped > 0 {
		fmt.Fprintf(os.Stderr, "# defect: and %d more defects not shown\n", report.Dropped)
	}
	return rs, dom, nil
}

func cmdDist(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("dist", flag.ContinueOnError)
	in := addInputFlags(fs)
	penalty := fs.Float64("p", 0.5, "penalty parameter for K^(p)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rs, _, err := in.read(stdin)
	if err != nil {
		return err
	}
	if len(rs) < 2 {
		return fmt.Errorf("dist needs at least two rankings, got %d", len(rs))
	}
	a, b := rs[0], rs[1]
	kp, err := metrics.KProf(a, b)
	if err != nil {
		return err
	}
	fp, _ := metrics.FProf(a, b)
	kh, _ := metrics.KHaus(a, b)
	fh, _ := metrics.FHaus(a, b)
	kpen, _ := metrics.KWithPenalty(a, b, *penalty)
	fmt.Fprintf(stdout, "Kprof  = %g\n", kp)
	fmt.Fprintf(stdout, "Fprof  = %g\n", fp)
	fmt.Fprintf(stdout, "KHaus  = %d\n", kh)
	fmt.Fprintf(stdout, "FHaus  = %d\n", fh)
	fmt.Fprintf(stdout, "K^(%g) = %g\n", *penalty, kpen)
	if g, err := metrics.GoodmanKruskalGamma(a, b); err == nil {
		fmt.Fprintf(stdout, "gamma  = %g\n", g)
	} else {
		fmt.Fprintf(stdout, "gamma  = undefined\n")
	}
	return nil
}

func cmdAgg(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("agg", flag.ContinueOnError)
	in := addInputFlags(fs)
	method := fs.String("method", "median", "median | dp | borda | mc4 | footrule-opt")
	robustMode := fs.String("robust", "", "hostile-voter-robust mode (overrides -method): trimmed-borda | weighted-median | minmax")
	trim := fs.Int("trim", 0, "drop this many least-reliable rankings before aggregating (requires -robust)")
	trace := fs.Bool("trace", false, "record telemetry spans and append per-phase timings as comment lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trim != 0 && *robustMode == "" {
		return fmt.Errorf("-trim requires -robust")
	}
	if *trace {
		was := telemetry.Enabled()
		telemetry.Enable()
		telemetry.ResetTrace()
		if !was {
			defer telemetry.Disable()
		}
	}
	rs, dom, err := in.read(stdin)
	if err != nil {
		return err
	}
	if len(rs) == 0 {
		return fmt.Errorf("no rankings to aggregate")
	}
	var out *ranking.PartialRanking
	if *robustMode != "" {
		mode, merr := robust.ParseMode(*robustMode)
		if merr != nil {
			return merr
		}
		res, rerr := robust.Aggregate(rs, robust.Options{Mode: mode, Trim: *trim})
		if rerr != nil {
			return rerr
		}
		// Reliability forensics ride on stderr like parse defects, keeping
		// stdout a clean ranking-plus-comments stream.
		dropped := make(map[int]bool, len(res.Trimmed))
		for _, i := range res.Trimmed {
			dropped[i] = true
		}
		for i, w := range res.Weights {
			status := "kept"
			if dropped[i] {
				status = "trimmed"
			}
			fmt.Fprintf(os.Stderr, "# robust: voter %d weight %.6f (%s)\n", i, w, status)
		}
		fmt.Fprintf(os.Stderr, "# robust: mode=%s trim=%d survivors=%d max=%g sum=%g\n",
			mode, *trim, len(res.Kept), res.MaxDistance, res.SumDistance)
		out = res.Aggregate
	} else {
		switch *method {
		case "median":
			out, err = aggregate.MedianFull(rs)
		case "dp":
			out, err = aggregate.OptimalPartialAggregate(rs)
		case "borda":
			out, err = aggregate.Borda(rs)
		case "mc4":
			out, err = aggregate.MarkovChain(rs, aggregate.MC4, aggregate.MarkovChainOptions{})
		case "footrule-opt":
			out, _, err = aggregate.FootruleOptimalFull(rs)
		default:
			return fmt.Errorf("unknown method %q", *method)
		}
		if err != nil {
			return err
		}
	}
	obj, err := aggregate.SumL1Ranking(out, rs)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, dom.Render(out))
	fmt.Fprintf(stdout, "# sum Fprof objective = %g\n", obj)
	if *trace {
		for _, ev := range telemetry.TraceEvents() {
			fmt.Fprintf(stdout, "# trace: %-28s %s\n", ev.Name, time.Duration(ev.DurationNs))
		}
	}
	return nil
}

func cmdTopK(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("topk", flag.ContinueOnError)
	in := addInputFlags(fs)
	k := fs.Int("k", 1, "number of winners")
	algo := fs.String("algo", "medrank", "engine: medrank, ta, nra, or ca")
	costRatio := fs.Int("cost-ratio", 0, "cR/cS weight for CA scheduling and cost reporting; 0 means the engine default (10 for ta/ca, 0 for medrank/nra)")
	stats := fs.Bool("stats", false, "emit the run's access accounting as JSON instead of text")
	timeout := fs.Duration("timeout", 0, "abort the run after this long; 0 means no deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *costRatio < 0 {
		return fmt.Errorf("-cost-ratio must be non-negative, got %d", *costRatio)
	}
	ratio := *costRatio
	if ratio == 0 && (*algo == "ta" || *algo == "ca") {
		ratio = 10
	}
	rs, dom, err := in.read(stdin)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var res *topk.Result
	switch *algo {
	case "medrank":
		res, err = topk.MedRankContext(ctx, rs, *k, topk.RoundRobin)
	case "ta":
		res, err = topk.ThresholdTopKContext(ctx, rs, *k)
	case "nra":
		res, err = topk.NRAContext(ctx, rs, *k)
	case "ca":
		res, err = topk.CAContext(ctx, rs, *k, ratio)
	default:
		return fmt.Errorf("unknown -algo %q (want medrank, ta, nra, or ca)", *algo)
	}
	if err != nil {
		return err
	}
	full := topk.FullScanCost(rs)
	if *stats {
		cert := topk.CertificateLowerBound(rs, res.Winners)
		costCert := topk.CertificateLowerBoundCost(rs, res.Winners, 1, ratio)
		winners := make([]string, len(res.Winners))
		for i, w := range res.Winners {
			winners[i] = dom.Name(w)
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Algo                string           `json:"algo"`
			Winners             []string         `json:"winners"`
			Access              topk.AccessStats `json:"access"`
			FullScan            int              `json:"full_scan"`
			Certificate         int              `json:"certificate"`
			OptimalityRatio     float64          `json:"optimality_ratio"`
			CostRatio           int              `json:"cost_ratio"`
			MiddlewareCost      int              `json:"middleware_cost"`
			CostCertificate     int              `json:"cost_certificate"`
			CostOptimalityRatio float64          `json:"cost_optimality_ratio"`
		}{*algo, winners, res.Stats, full.Total, cert, res.Stats.OptimalityRatio(cert),
			ratio, res.Stats.MiddlewareCost(1, ratio), costCert,
			res.Stats.CostOptimalityRatio(1, ratio, costCert)})
	}
	for i, w := range res.Winners {
		fmt.Fprintf(stdout, "%d. %s (median position %g)\n", i+1, dom.Name(w), float64(res.Medians2[i])/2)
	}
	fmt.Fprintf(stdout, "# probes: %d of %d (%.1f%% of a full scan)\n",
		res.Stats.Total, full.Total, 100*float64(res.Stats.Total)/float64(full.Total))
	return nil
}

func cmdGen(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	n := fs.Int("n", 10, "domain size")
	m := fs.Int("m", 3, "number of rankings")
	maxBucket := fs.Int("maxbucket", 3, "maximum bucket size")
	theta := fs.Float64("theta", -1, "Mallows dispersion; <0 for independent uniform rankings")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	names := make([]string, *n)
	for i := range names {
		names[i] = fmt.Sprintf("e%d", i)
	}
	dom, err := ranking.DomainOf(names...)
	if err != nil {
		return err
	}
	var rs []*ranking.PartialRanking
	if *theta >= 0 {
		buckets := (*n + *maxBucket - 1) / *maxBucket
		ens, _ := randrank.MallowsPartialEnsemble(rng, *n, *m, *theta, buckets)
		rs = ens
	} else {
		for i := 0; i < *m; i++ {
			rs = append(rs, randrank.Partial(rng, *n, *maxBucket))
		}
	}
	return ranking.WriteLines(stdout, dom, rs)
}

func cmdCompare(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	in := addInputFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rs, _, err := in.read(stdin)
	if err != nil {
		return err
	}
	results, err := core.CompareAll(rs)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%-16s %10s %10s %10s %10s\n", "method", "sum Kprof", "sum Fprof", "sum KHaus", "sum FHaus")
	for _, r := range results {
		fmt.Fprintf(stdout, "%-16s %10.1f %10.1f %10d %10d\n",
			r.Method, r.Objectives.SumKProf, r.Objectives.SumFProf,
			r.Objectives.SumKHaus, r.Objectives.SumFHaus)
	}
	return nil
}

func cmdCorr(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("corr", flag.ContinueOnError)
	in := addInputFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rs, _, err := in.read(stdin)
	if err != nil {
		return err
	}
	if len(rs) < 2 {
		return fmt.Errorf("corr needs at least two rankings, got %d", len(rs))
	}
	a, b := rs[0], rs[1]
	print := func(name string, v float64, err error) {
		if err != nil {
			fmt.Fprintf(stdout, "%-7s = undefined\n", name)
			return
		}
		fmt.Fprintf(stdout, "%-7s = %.4f\n", name, v)
	}
	ta, err1 := metrics.KendallTauA(a, b)
	print("tau-a", ta, err1)
	tb, err2 := metrics.KendallTauB(a, b)
	print("tau-b", tb, err2)
	rho, err3 := metrics.SpearmanRho(a, b)
	print("rho", rho, err3)
	g, err4 := metrics.GoodmanKruskalGamma(a, b)
	print("gamma", g, err4)
	nk, err5 := metrics.NormalizedKProf(a, b)
	print("Kprof~", nk, err5)
	nf, err6 := metrics.NormalizedFProf(a, b)
	print("Fprof~", nf, err6)
	w, err7 := metrics.KendallW(rs)
	print("W(all)", w, err7)
	return nil
}

// cmdEval treats the first ranking as a candidate aggregation and scores it
// against the remaining rankings under all four metrics.
func cmdEval(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	in := addInputFlags(fs) // first line of the input is the candidate
	if err := fs.Parse(args); err != nil {
		return err
	}
	rs, _, err := in.read(stdin)
	if err != nil {
		return err
	}
	if len(rs) < 2 {
		return fmt.Errorf("eval needs a candidate plus at least one input, got %d lines", len(rs))
	}
	obj, err := core.Evaluate(rs[0], rs[1:])
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "candidate vs %d inputs:\n", len(rs)-1)
	fmt.Fprintf(stdout, "  sum Kprof = %g\n", obj.SumKProf)
	fmt.Fprintf(stdout, "  sum Fprof = %g\n", obj.SumFProf)
	fmt.Fprintf(stdout, "  sum KHaus = %d\n", obj.SumKHaus)
	fmt.Fprintf(stdout, "  sum FHaus = %d\n", obj.SumFHaus)
	return nil
}
