package main

import (
	"bytes"
	"strings"
	"testing"
)

// robustSample has three agreeing voters and one reversal spammer, so trim=1
// must report voter 3 trimmed.
const robustSample = `a | b | c | d
a | b | d | c
b | a | c | d
d | c | b | a
`

func TestAggRobustModes(t *testing.T) {
	for _, mode := range []string{"trimmed-borda", "weighted-median", "minmax"} {
		var out bytes.Buffer
		stderr := captureStderr(t, func() {
			if err := run([]string{"agg", "-robust", mode, "-trim", "1"}, strings.NewReader(robustSample), &out); err != nil {
				t.Fatalf("agg -robust %s failed: %v", mode, err)
			}
		})
		if !strings.Contains(out.String(), "a") || !strings.Contains(out.String(), "objective") {
			t.Errorf("agg -robust %s stdout wrong:\n%s", mode, out.String())
		}
		if !strings.Contains(stderr, "# robust: voter 3") || !strings.Contains(stderr, "(trimmed)") {
			t.Errorf("agg -robust %s stderr missing trimmed-voter line:\n%s", mode, stderr)
		}
		if !strings.Contains(stderr, "# robust: voter 0") || !strings.Contains(stderr, "(kept)") {
			t.Errorf("agg -robust %s stderr missing kept-voter line:\n%s", mode, stderr)
		}
		if !strings.Contains(stderr, "mode="+mode) || !strings.Contains(stderr, "survivors=3") {
			t.Errorf("agg -robust %s stderr missing summary line:\n%s", mode, stderr)
		}
		// The spammer must not drag d to the front: the robust consensus
		// starts with a or b.
		first := strings.Fields(out.String())[0]
		if first != "a" && first != "b" {
			t.Errorf("agg -robust %s consensus starts with %q, want a or b:\n%s", mode, first, out.String())
		}
	}
}

func TestAggRobustFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"agg", "-trim", "1"}, strings.NewReader(robustSample), &out); err == nil {
		t.Error("agg -trim without -robust should fail")
	}
	if err := run([]string{"agg", "-robust", "mystery"}, strings.NewReader(robustSample), &out); err == nil {
		t.Error("agg -robust mystery should fail")
	}
	if err := run([]string{"agg", "-robust", "minmax", "-trim", "4"}, strings.NewReader(robustSample), &out); err == nil {
		t.Error("agg -robust with trim leaving no voters should fail")
	}
}
