package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// corruptSample has a clean first and last line, an empty bucket on line 2,
// and an under-covering ranking on line 3 (2 of the 4 domain elements).
const corruptSample = `sushi thai | bbq | deli
bbq | | thai deli sushi
deli | sushi
thai deli | sushi bbq
`

// captureStderr runs fn with os.Stderr redirected to a pipe and returns what
// was written (the defect report of lenient parsing goes to stderr).
func captureStderr(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	defer func() { os.Stderr = old }()
	fn()
	w.Close()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// Every reading subcommand must reject a malformed ensemble in strict mode
// with a single-line diagnostic naming the defective line — and never panic.
func TestStrictRejectsMalformedInput(t *testing.T) {
	for _, sub := range []string{"dist", "agg", "topk", "compare", "corr", "eval"} {
		var out bytes.Buffer
		err := run([]string{sub}, strings.NewReader(corruptSample), &out)
		if err == nil {
			t.Errorf("%s accepted malformed input", sub)
			continue
		}
		msg := err.Error()
		if strings.Contains(msg, "\n") {
			t.Errorf("%s: diagnostic spans multiple lines: %q", sub, msg)
		}
		if !strings.Contains(msg, "line 2") {
			t.Errorf("%s: diagnostic %q does not name the defective line", sub, msg)
		}
	}
}

func TestLenientRecoversWithDefectReport(t *testing.T) {
	var out bytes.Buffer
	var err error
	stderr := captureStderr(t, func() {
		err = run([]string{"eval", "-lenient"}, strings.NewReader(corruptSample), &out)
	})
	if err != nil {
		t.Fatalf("lenient eval failed: %v", err)
	}
	// Drop policy: lines 2 and 3 are dropped, leaving candidate + 1 input.
	if !strings.Contains(out.String(), "candidate vs 1 inputs") {
		t.Errorf("drop policy kept the wrong rankings:\n%s", out.String())
	}
	if n := strings.Count(stderr, "# defect:"); n != 2 {
		t.Errorf("want 2 defect lines on stderr, got %d:\n%s", n, stderr)
	}
	if !strings.Contains(stderr, "line 2") || !strings.Contains(stderr, "line 3") {
		t.Errorf("defect report does not localize the defects:\n%s", stderr)
	}

	// Complete policy: line 3 is repaired into the ensemble instead.
	out.Reset()
	stderr = captureStderr(t, func() {
		err = run([]string{"eval", "-lenient", "-repair", "complete"}, strings.NewReader(corruptSample), &out)
	})
	if err != nil {
		t.Fatalf("lenient -repair complete failed: %v", err)
	}
	if !strings.Contains(out.String(), "candidate vs 2 inputs") {
		t.Errorf("complete policy should repair the under-covering line:\n%s", out.String())
	}
	if !strings.Contains(stderr, "completed") {
		t.Errorf("repair not reported:\n%s", stderr)
	}
}

func TestBadRepairPolicyAndMissingFile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"agg", "-repair", "zap"}, strings.NewReader(sample), &out); err == nil {
		t.Error("bad -repair value accepted")
	}
	if err := run([]string{"agg", "-file", "/nonexistent/rankings.txt"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing -file accepted")
	}
}

// Junk bytes must produce errors (or empty-input diagnostics), never panics,
// in both strict and lenient modes.
func TestNeverPanicsOnJunk(t *testing.T) {
	junk := []string{
		"\x00\x01\x02\n",
		"| | |\n",
		"a a a\n",
		strings.Repeat("x ", 500) + "\n\xff\xfe\n",
	}
	for _, sub := range []string{"dist", "agg", "topk", "compare", "corr", "eval"} {
		for _, in := range junk {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%s panicked on junk input: %v", sub, r)
					}
				}()
				var out bytes.Buffer
				_ = captureStderr(t, func() {
					_ = run([]string{sub}, strings.NewReader(in), &out)
					_ = run([]string{sub, "-lenient"}, strings.NewReader(in), &out)
				})
			}()
		}
	}
}
