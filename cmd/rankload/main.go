// Command rankload drives a live rankserve with heavy concurrent traffic and
// writes a latency/throughput artifact (BENCH_PR6.json) in the benchjson
// tradition: env-stamped, diffable, one record per endpoint.
//
// The workload is synthetic but shaped like real traffic: each tenant's
// catalog is a Mallows-sampled ensemble (concentrated around a hidden
// center, the way real voter populations agree), and every client goroutine
// draws requests from a weighted mix of top-k queries (MEDRANK and TA),
// resilient top-k with deterministic chaos injection (so degraded-mode
// answers appear at a measurable rate), full aggregations, ranking submits,
// and stats scrapes. Latencies are recorded per endpoint and reported as
// exact p50/p95/p99 over every observation; the final report also scrapes
// the server's /stats for the shared distance cache's hit rate.
//
// With -scrape, rankload additionally polls the server's GET /metrics
// Prometheus exposition during the run (exercising concurrent scrapes) and
// takes one final scrape after the load drains: the
// rankserve_request_latency_ns histogram series are merged across tenant
// labels per endpoint, lint-checked with the repo's own exposition linter,
// and reduced to server-side p50/p95/p99 in a server_metrics section — so
// the artifact carries both the client's view and the server's view of the
// same run.
//
// With -openloop, rankload switches to the overload experiment (see
// openloop.go): Poisson arrivals at capacity-relative offered rates, a
// deadline header on every query, and a BENCH_PR9.json artifact of
// shed/degradation behavior per phase instead of the closed-loop report.
//
// Usage:
//
//	rankload -addr host:port [-tenants 2] [-clients 32] [-requests 1000]
//	         [-n 40] [-m 12] [-theta 1.0] [-k 5] [-seed 1]
//	         [-mix topk=6,resilient=1,agg=2,submit=1,stats=1]
//	         [-timeout 30s] [-scrape] [-out BENCH_PR6.json]
//	         [-openloop [-rate R] [-sweep 0.3,2] [-duration 3s]
//	          [-deadline-ms 500] [-grace-ms 250]]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/envstamp"
	"repro/internal/randrank"
	"repro/internal/ranking"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rankload:", err)
		os.Exit(1)
	}
}

// opNames is the fixed endpoint mix vocabulary.
var opNames = []string{"topk", "resilient", "agg", "submit", "stats"}

// mixWeights maps op name -> weight. Ops absent from the flag get weight 0.
type mixWeights map[string]int

// parseMix parses "topk=6,agg=2,..." into weights.
func parseMix(s string) (mixWeights, error) {
	w := mixWeights{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want name=weight)", part)
		}
		v, err := strconv.Atoi(val)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		known := false
		for _, op := range opNames {
			if name == op {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown mix op %q (want one of %s)", name, strings.Join(opNames, ", "))
		}
		w[name] = v
	}
	total := 0
	for _, v := range w {
		total += v
	}
	if total == 0 {
		return nil, fmt.Errorf("mix %q has zero total weight", s)
	}
	return w, nil
}

// pick draws one op from the weights with rng.
func (w mixWeights) pick(rng *rand.Rand) string {
	total := 0
	for _, op := range opNames {
		total += w[op]
	}
	r := rng.Intn(total)
	for _, op := range opNames {
		r -= w[op]
		if r < 0 {
			return op
		}
	}
	return opNames[0] // unreachable
}

// quantileNs returns the exact q-quantile (nearest-rank) of sorted ns.
func quantileNs(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// endpointReport is one endpoint's latency summary in the artifact.
type endpointReport struct {
	Count   int     `json:"count"`
	Errors  int     `json:"errors"`
	MeanNs  float64 `json:"mean_ns"`
	P50Ns   int64   `json:"p50_ns"`
	P95Ns   int64   `json:"p95_ns"`
	P99Ns   int64   `json:"p99_ns"`
	MaxNs   int64   `json:"max_ns"`
	PerSec  float64 `json:"per_sec"`
	Dropped int     `json:"dropped"`
}

// summarize folds raw latencies into an endpointReport.
func summarize(lat []int64, errors, dropped int, elapsed time.Duration) endpointReport {
	r := endpointReport{Count: len(lat), Errors: errors, Dropped: dropped}
	if len(lat) == 0 {
		return r
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum int64
	for _, v := range lat {
		sum += v
	}
	r.MeanNs = float64(sum) / float64(len(lat))
	r.P50Ns = quantileNs(lat, 0.50)
	r.P95Ns = quantileNs(lat, 0.95)
	r.P99Ns = quantileNs(lat, 0.99)
	r.MaxNs = lat[len(lat)-1]
	if elapsed > 0 {
		r.PerSec = float64(len(lat)) / elapsed.Seconds()
	}
	return r
}

// report is the BENCH_PR6.json document.
type report struct {
	envstamp.Stamp
	Addr     string  `json:"addr"`
	Tenants  int     `json:"tenants"`
	Clients  int     `json:"clients"`
	Requests int     `json:"requests"`
	N        int     `json:"n"`
	M        int     `json:"m"`
	Theta    float64 `json:"theta"`
	Seed     int64   `json:"seed"`
	Mix      string  `json:"mix"`

	ElapsedNs        int64                     `json:"elapsed_ns"`
	ThroughputPerSec float64                   `json:"throughput_per_sec"`
	Endpoints        map[string]endpointReport `json:"endpoints"`
	Dropped          int                       `json:"dropped"`
	DegradedQueries  int64                     `json:"degraded_queries"`
	DegradedFraction float64                   `json:"degraded_fraction"`
	Cache            *cacheSummary             `json:"cache,omitempty"`
	ServerMetrics    *serverMetrics            `json:"server_metrics,omitempty"`
}

// serverEndpointMetrics is one endpoint's latency as the *server* measured
// it, reconstructed from the rankserve_request_latency_ns histogram with the
// tenant label summed away. Quantiles are bucket upper bounds (base-2 edges),
// so they are coarser than the client-side exact quantiles but immune to
// client-side queueing.
type serverEndpointMetrics struct {
	Count  float64 `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  float64 `json:"p50_ns"`
	P95Ns  float64 `json:"p95_ns"`
	P99Ns  float64 `json:"p99_ns"`
}

// serverMetrics is the report's server_metrics section: the final /metrics
// scrape reduced to per-endpoint latency summaries, plus how many mid-run
// scrapes succeeded and whether the exposition linted clean.
type serverMetrics struct {
	Scrapes       int                              `json:"scrapes"`
	LintProblems  []string                         `json:"lint_problems,omitempty"`
	RequestsTotal float64                          `json:"requests_total"`
	Endpoints     map[string]serverEndpointMetrics `json:"endpoints"`
}

// cacheSummary is the slice of the server's /stats this artifact keeps.
type cacheSummary struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// clientStats is one worker's private tally, merged after the run.
type clientStats struct {
	latencies map[string][]int64
	errors    map[string]int
	dropped   map[string]int
	degraded  int64
}

func newClientStats() *clientStats {
	return &clientStats{
		latencies: make(map[string][]int64),
		errors:    make(map[string]int),
		dropped:   make(map[string]int),
	}
}

// loadConfig is the run's fixed parameter set.
type loadConfig struct {
	addr     string
	tenants  int
	clients  int
	requests int
	n, m     int
	k        int
	theta    float64
	seed     int64
	mix      mixWeights
	mixStr   string
	timeout  time.Duration
	scrape   bool
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rankload", flag.ContinueOnError)
	addr := fs.String("addr", "", "rankserve address (host:port), required")
	tenants := fs.Int("tenants", 2, "number of tenants to load")
	clients := fs.Int("clients", 32, "concurrent client goroutines")
	requests := fs.Int("requests", 1000, "total requests across all clients")
	n := fs.Int("n", 40, "domain size of each catalog")
	m := fs.Int("m", 12, "ranking lists per catalog")
	k := fs.Int("k", 5, "maximum k of top-k queries")
	theta := fs.Float64("theta", 1.0, "Mallows concentration of the sampled ensembles")
	seed := fs.Int64("seed", 1, "random seed")
	mixFlag := fs.String("mix", "topk=6,resilient=1,agg=2,submit=1,stats=1", "weighted request mix")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	scrape := fs.Bool("scrape", false, "poll GET /metrics during the run and embed server-side latency quantiles")
	out := fs.String("out", "", "write the JSON report here (default stdout)")
	openloop := fs.Bool("openloop", false, "overload mode: Poisson arrivals at capacity-relative rates instead of the closed-loop mix")
	olRate := fs.Float64("rate", 0, "openloop: base arrival rate in req/s (0 = measure capacity with a calibration burst)")
	olSweep := fs.String("sweep", "0.3,2", "openloop: comma-separated multipliers of the base rate, one phase each")
	olDuration := fs.Duration("duration", 3*time.Second, "openloop: wall clock per phase")
	olDeadlineMs := fs.Int64("deadline-ms", 0, "openloop: X-Deadline-Ms stamped on every query (0 = none)")
	olGraceMs := fs.Int64("grace-ms", 250, "openloop: accepted answers may run this far past the deadline before counting as violations")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("-addr is required")
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}
	if *clients < 1 || *requests < 1 || *tenants < 1 || *n < 2 || *m < 1 || *k < 1 {
		return fmt.Errorf("all of -clients, -requests, -tenants, -m, -k must be >= 1 and -n >= 2")
	}
	cfg := loadConfig{
		addr: *addr, tenants: *tenants, clients: *clients, requests: *requests,
		n: *n, m: *m, k: *k, theta: *theta, seed: *seed,
		mix: mix, mixStr: *mixFlag, timeout: *timeout, scrape: *scrape,
	}

	var rep any
	if *openloop {
		sweep, serr := parseSweep(*olSweep)
		if serr != nil {
			return serr
		}
		ocfg := overloadConfig{
			loadConfig: cfg,
			rate:       *olRate,
			sweep:      sweep,
			duration:   *olDuration,
			deadlineMs: *olDeadlineMs,
			graceMs:    *olGraceMs,
		}
		rep, err = driveOverload(ocfg)
	} else {
		rep, err = drive(cfg)
	}
	if err != nil {
		return err
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// domainNames builds the element vocabulary e000..e(n-1).
func domainNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("e%03d", i)
	}
	return names
}

// renderLines renders an ensemble in the text codec for submission.
func renderLines(dom *ranking.Domain, rankings []*ranking.PartialRanking) (string, error) {
	var buf bytes.Buffer
	if err := ranking.WriteLines(&buf, dom, rankings); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// seedTenants puts one Mallows catalog per tenant (t0..tN-1, catalog "main").
func seedTenants(client *http.Client, base string, cfg loadConfig) error {
	dom, err := ranking.DomainOf(domainNames(cfg.n)...)
	if err != nil {
		return err
	}
	seedRng := rand.New(rand.NewSource(cfg.seed))
	for ti := 0; ti < cfg.tenants; ti++ {
		ens, _ := randrank.MallowsEnsemble(seedRng, cfg.n, cfg.m, cfg.theta)
		body, err := renderLines(dom, ens)
		if err != nil {
			return err
		}
		url := fmt.Sprintf("%s/v1/tenants/t%d/catalogs/main", base, ti)
		req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(body))
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return fmt.Errorf("seeding tenant t%d: %w", ti, err)
		}
		respBody, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("seeding tenant t%d: %s: %s", ti, resp.Status, respBody)
		}
	}
	return nil
}

// drive seeds the catalogs and runs the load phase.
func drive(cfg loadConfig) (*report, error) {
	client := &http.Client{Timeout: cfg.timeout}
	base := "http://" + cfg.addr
	dom, err := ranking.DomainOf(domainNames(cfg.n)...)
	if err != nil {
		return nil, err
	}
	if err := seedTenants(client, base, cfg); err != nil {
		return nil, err
	}

	// Load phase: clients pull tickets from a shared counter until the
	// request budget is spent. The metrics poller runs alongside them so the
	// exposition path is scraped concurrently with the traffic it measures.
	var poller *metricsPoller
	if cfg.scrape {
		poller = startMetricsPoller(client, base, 500*time.Millisecond)
	}
	var ticket atomic.Int64
	var wg sync.WaitGroup
	stats := make([]*clientStats, cfg.clients)
	start := time.Now()
	for ci := 0; ci < cfg.clients; ci++ {
		stats[ci] = newClientStats()
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			w := &worker{
				cfg:    cfg,
				client: client,
				base:   base,
				dom:    dom,
				rng:    rand.New(rand.NewSource(cfg.seed + 7919*int64(ci+1))),
				stats:  stats[ci],
			}
			for {
				t := ticket.Add(1)
				if t > int64(cfg.requests) {
					return
				}
				w.doOne()
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Merge per-client tallies.
	merged := newClientStats()
	for _, cs := range stats {
		for op, lat := range cs.latencies {
			merged.latencies[op] = append(merged.latencies[op], lat...)
		}
		for op, v := range cs.errors {
			merged.errors[op] += v
		}
		for op, v := range cs.dropped {
			merged.dropped[op] += v
		}
		merged.degraded += cs.degraded
	}

	rep := &report{
		Stamp:    envstamp.New(),
		Addr:     cfg.addr,
		Tenants:  cfg.tenants,
		Clients:  cfg.clients,
		Requests: cfg.requests,
		N:        cfg.n,
		M:        cfg.m,
		Theta:    cfg.theta,
		Seed:     cfg.seed,
		Mix:      cfg.mixStr,

		ElapsedNs: elapsed.Nanoseconds(),
		Endpoints: make(map[string]endpointReport, len(opNames)),
	}
	total, totalDropped := 0, 0
	var resilientCount int
	for _, op := range opNames {
		er := summarize(merged.latencies[op], merged.errors[op], merged.dropped[op], elapsed)
		if er.Count == 0 && er.Dropped == 0 {
			continue
		}
		rep.Endpoints[op] = er
		total += er.Count
		totalDropped += er.Dropped
		if op == "resilient" {
			resilientCount = er.Count
		}
	}
	rep.Dropped = totalDropped
	rep.DegradedQueries = merged.degraded
	if resilientCount > 0 {
		rep.DegradedFraction = float64(merged.degraded) / float64(resilientCount)
	}
	if elapsed > 0 {
		rep.ThroughputPerSec = float64(total) / elapsed.Seconds()
	}
	rep.Cache = scrapeCache(client, base)
	if poller != nil {
		scrapes := poller.stop()
		rep.ServerMetrics = scrapeServerMetrics(client, base, scrapes)
	}
	return rep, nil
}

// metricsPoller scrapes GET /metrics on a fixed cadence in the background.
// Its job during the run is concurrency, not data: the summary comes from
// one final scrape after the load drains.
type metricsPoller struct {
	done    chan struct{}
	stopped sync.WaitGroup
	scrapes atomic.Int64
}

func startMetricsPoller(client *http.Client, base string, every time.Duration) *metricsPoller {
	p := &metricsPoller{done: make(chan struct{})}
	p.stopped.Add(1)
	go func() {
		defer p.stopped.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-p.done:
				return
			case <-tick.C:
				resp, err := client.Get(base + "/metrics")
				if err != nil {
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					p.scrapes.Add(1)
				}
			}
		}
	}()
	return p
}

// stop halts the poller and returns how many mid-run scrapes succeeded.
func (p *metricsPoller) stop() int {
	close(p.done)
	p.stopped.Wait()
	return int(p.scrapes.Load())
}

// scrapeServerMetrics takes the final /metrics scrape and reduces it to the
// report's server_metrics section: lint problems (the repo's own checker, so
// a broken exposition shows up in the artifact), the total request count,
// and per-endpoint latency quantiles with the tenant label summed away.
// Summing is sound because cumulative histogram buckets with identical edges
// add pointwise.
func scrapeServerMetrics(client *http.Client, base string, scrapes int) *serverMetrics {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil
	}

	sm := &serverMetrics{Scrapes: scrapes, Endpoints: make(map[string]serverEndpointMetrics)}
	for _, pr := range telemetry.LintExposition(bytes.NewReader(body)) {
		sm.LintProblems = append(sm.LintProblems, pr.String())
	}
	exp, _ := telemetry.ParseExposition(bytes.NewReader(body))

	const latency = "rankserve_request_latency_ns"
	buckets := make(map[string]map[float64]float64) // endpoint -> le -> count
	sums := make(map[string]float64)
	counts := make(map[string]float64)
	for _, s := range exp.Samples {
		if s.Name == "rankserve_requests_total" {
			sm.RequestsTotal += s.Value
			continue
		}
		ep := s.Labels["endpoint"]
		switch s.Name {
		case latency + "_bucket":
			le, perr := strconv.ParseFloat(s.Labels["le"], 64)
			if perr != nil {
				continue
			}
			if buckets[ep] == nil {
				buckets[ep] = make(map[float64]float64)
			}
			buckets[ep][le] += s.Value
		case latency + "_sum":
			sums[ep] += s.Value
		case latency + "_count":
			counts[ep] += s.Value
		}
	}
	for ep, b := range buckets {
		em := serverEndpointMetrics{
			Count: counts[ep],
			P50Ns: telemetry.QuantileFromBuckets(b, 0.50),
			P95Ns: telemetry.QuantileFromBuckets(b, 0.95),
			P99Ns: telemetry.QuantileFromBuckets(b, 0.99),
		}
		if em.Count > 0 {
			em.MeanNs = sums[ep] / em.Count
		}
		sm.Endpoints[ep] = em
	}
	return sm
}

// worker is one client goroutine's state.
type worker struct {
	cfg    loadConfig
	client *http.Client
	base   string
	dom    *ranking.Domain
	rng    *rand.Rand
	stats  *clientStats
}

// topkResult is the slice of the server's top-k answer the client inspects.
type topkResult struct {
	Degraded json.RawMessage `json:"degraded"`
}

// doOne issues one request drawn from the mix.
func (w *worker) doOne() {
	op := w.cfg.mix.pick(w.rng)
	tenant := fmt.Sprintf("t%d", w.rng.Intn(w.cfg.tenants))
	catURL := fmt.Sprintf("%s/v1/tenants/%s/catalogs/main", w.base, tenant)

	var req *http.Request
	var err error
	switch op {
	case "topk":
		algo := "medrank"
		if w.rng.Intn(2) == 1 {
			algo = "ta"
		}
		body := fmt.Sprintf(`{"k": %d, "algo": %q}`, 1+w.rng.Intn(w.cfg.k), algo)
		req, err = http.NewRequest(http.MethodPost, catURL+"/topk", strings.NewReader(body))
	case "resilient":
		// A small per-access death rate staggers list deaths, so a
		// measurable fraction of answers is degraded while enough lists
		// survive to answer (uniform death-after kills whole ensembles).
		body := fmt.Sprintf(`{"k": %d, "resilient": true, "chaos": {"seed": %d, "death_rate": 0.05}}`,
			1+w.rng.Intn(w.cfg.k), w.rng.Int63())
		req, err = http.NewRequest(http.MethodPost, catURL+"/topk", strings.NewReader(body))
	case "agg":
		metric := []string{"kprof", "fprof", "khaus", "fhaus"}[w.rng.Intn(4)]
		body := fmt.Sprintf(`{"metric": %q}`, metric)
		req, err = http.NewRequest(http.MethodPost, catURL+"/aggregate", strings.NewReader(body))
	case "submit":
		ens, _ := randrank.MallowsEnsemble(w.rng, w.cfg.n, 2, w.cfg.theta)
		lines, rerr := renderLines(w.dom, ens)
		if rerr != nil {
			w.stats.dropped[op]++
			return
		}
		req, err = http.NewRequest(http.MethodPost, catURL+"/rankings", strings.NewReader(lines))
	case "stats":
		req, err = http.NewRequest(http.MethodGet, w.base+"/stats", nil)
	}
	if err != nil {
		w.stats.dropped[op]++
		return
	}

	start := time.Now()
	resp, err := w.client.Do(req)
	if err != nil {
		w.stats.dropped[op]++
		return
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	w.stats.latencies[op] = append(w.stats.latencies[op], time.Since(start).Nanoseconds())
	if resp.StatusCode != http.StatusOK {
		w.stats.errors[op]++
		return
	}
	if op == "resilient" {
		var tr topkResult
		if json.Unmarshal(body, &tr) == nil && len(tr.Degraded) > 0 && string(tr.Degraded) != "null" {
			w.stats.degraded++
		}
	}
}

// scrapeCache pulls the shared cache's totals from the server's /stats.
func scrapeCache(client *http.Client, base string) *cacheSummary {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var doc struct {
		Cache struct {
			Hits    int64   `json:"hits"`
			Misses  int64   `json:"misses"`
			HitRate float64 `json:"hit_rate"`
		} `json:"cache"`
	}
	if json.NewDecoder(resp.Body).Decode(&doc) != nil {
		return nil
	}
	return &cacheSummary{Hits: doc.Cache.Hits, Misses: doc.Cache.Misses, HitRate: doc.Cache.HitRate}
}
