package main

// Open-loop overload mode (-openloop): the closed-loop default self-throttles
// — each client waits for a response before sending the next request, so a
// slow server automatically sees less load. That makes it useless for
// measuring overload behavior. Here arrivals are Poisson-timed and
// independent of the server's progress: the offered rate is the experiment's
// independent variable, and what the server does with the excess — shed with
// 429 + Retry-After, degrade down the answer ladder, or blow its deadline —
// is the measurement.
//
// The offered rates come from -sweep, a list of multipliers applied to the
// server's measured capacity (a short closed-loop calibration burst) or to
// -rate when given explicitly. Each phase reports offered/accepted/shed
// counts, accepted-only latency quantiles, deadline violations beyond
// -grace-ms, whether every shed carried Retry-After, and the ladder-level
// mix of accepted answers. The artifact (BENCH_PR9.json) is env-stamped and
// diffable like the closed-loop report.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/envstamp"
)

// overloadConfig is the open-loop run's parameter set, resolved from flags.
type overloadConfig struct {
	loadConfig
	rate       float64       // explicit arrivals/s; 0 = calibrate capacity
	sweep      []float64     // capacity multipliers, one phase each
	duration   time.Duration // per-phase wall clock
	deadlineMs int64         // X-Deadline-Ms on every query; 0 = none
	graceMs    int64         // accepted answers may run this far past the deadline
}

// parseSweep parses "0.3,2" into multipliers.
func parseSweep(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad sweep factor %q (want a positive number)", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep %q has no factors", s)
	}
	return out, nil
}

// phaseReport is one offered-load phase in the artifact.
type phaseReport struct {
	Label         string  `json:"label"`
	Factor        float64 `json:"factor"`          // multiplier over capacity (or -rate)
	OfferedPerSec float64 `json:"offered_per_sec"` // target Poisson rate
	Offered       int     `json:"offered"`         // requests actually launched
	Accepted      int     `json:"accepted"`        // 200s
	Shed          int     `json:"shed"`            // 429s and 503s
	Errors        int     `json:"errors"`          // transport failures + unexpected statuses
	ShedFraction  float64 `json:"shed_fraction"`

	// Accepted-only latency: shed requests return in microseconds and would
	// make overload look *faster*; the question is what admitted work costs.
	P50Ns int64 `json:"p50_ns"`
	P95Ns int64 `json:"p95_ns"`
	P99Ns int64 `json:"p99_ns"`
	MaxNs int64 `json:"max_ns"`

	// DeadlineViolations counts accepted answers that came back later than
	// deadline+grace: the contract the ladder and shedding exist to protect.
	DeadlineViolations int `json:"deadline_violations"`
	// RetryAfterSeen counts shed responses carrying a Retry-After header;
	// RetryAfterMissing is sheds without one (must be 0).
	RetryAfterSeen    int `json:"retry_after_seen"`
	RetryAfterMissing int `json:"retry_after_missing"`
	// LadderMix tallies accepted answers by degradation rung; answers with
	// no ladder annotation count as "exact".
	LadderMix map[string]int `json:"ladder_mix"`
}

// overloadReport is the BENCH_PR9.json document.
type overloadReport struct {
	envstamp.Stamp
	Addr           string        `json:"addr"`
	Tenants        int           `json:"tenants"`
	N              int           `json:"n"`
	M              int           `json:"m"`
	K              int           `json:"k"`
	Seed           int64         `json:"seed"`
	DeadlineMs     int64         `json:"deadline_ms"`
	GraceMs        int64         `json:"grace_ms"`
	PhaseNs        int64         `json:"phase_ns"`
	Sweep          []float64     `json:"sweep"`
	CapacityPerSec float64       `json:"capacity_per_sec"`
	Phases         []phaseReport `json:"phases"`
}

// topkEnvelope is the slice of a top-k answer the open-loop client inspects.
type topkEnvelope struct {
	Ladder *struct {
		Level string `json:"level"`
	} `json:"ladder"`
}

// driveOverload seeds the catalogs, measures capacity, and runs the sweep.
func driveOverload(cfg overloadConfig) (*overloadReport, error) {
	// The default transport keeps only 2 idle connections per host; an
	// open-loop burst would then pay TCP setup on nearly every arrival and
	// the connection churn — not the server — would dominate tail latency.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 1024
	tr.MaxIdleConnsPerHost = 1024
	client := &http.Client{Timeout: cfg.timeout, Transport: tr}
	base := "http://" + cfg.addr
	if err := seedTenants(client, base, cfg.loadConfig); err != nil {
		return nil, err
	}

	capacity := cfg.rate
	if capacity <= 0 {
		capacity = calibrate(client, base, cfg)
		if capacity <= 0 {
			return nil, fmt.Errorf("calibration measured zero capacity; is the server reachable?")
		}
	}

	rep := &overloadReport{
		Stamp:          envstamp.New(),
		Addr:           cfg.addr,
		Tenants:        cfg.tenants,
		N:              cfg.n,
		M:              cfg.m,
		K:              cfg.k,
		Seed:           cfg.seed,
		DeadlineMs:     cfg.deadlineMs,
		GraceMs:        cfg.graceMs,
		PhaseNs:        cfg.duration.Nanoseconds(),
		Sweep:          cfg.sweep,
		CapacityPerSec: capacity,
	}
	for i, factor := range cfg.sweep {
		pr := runPhase(client, base, cfg, fmt.Sprintf("phase%d_x%.2g", i, factor), factor, capacity*factor)
		rep.Phases = append(rep.Phases, pr)
		// Let queued work and token buckets settle between phases so each
		// phase measures its own offered load, not the previous one's tail.
		time.Sleep(300 * time.Millisecond)
	}
	return rep, nil
}

// calibrate measures the server's uncontended top-k capacity with a short
// closed-loop burst: a few self-throttling clients, completions per second.
func calibrate(client *http.Client, base string, cfg overloadConfig) float64 {
	const (
		calClients  = 4
		calDuration = 1500 * time.Millisecond
	)
	var completed atomic.Int64
	deadline := time.Now().Add(calDuration)
	var wg sync.WaitGroup
	for ci := 0; ci < calClients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + 31*int64(ci+1)))
			for time.Now().Before(deadline) {
				if issueTopK(client, base, cfg, rng, 0) == http.StatusOK {
					completed.Add(1)
				}
			}
		}(ci)
	}
	wg.Wait()
	return float64(completed.Load()) / calDuration.Seconds()
}

// issueTopK posts one plain TA top-k query against a random tenant, with the
// deadline header when deadlineMs > 0. Returns the status (0 on transport
// error); the response body is discarded.
func issueTopK(client *http.Client, base string, cfg overloadConfig, rng *rand.Rand, deadlineMs int64) int {
	tenant := fmt.Sprintf("t%d", rng.Intn(cfg.tenants))
	body := fmt.Sprintf(`{"k": %d, "algo": "ta"}`, 1+rng.Intn(cfg.k))
	req, err := http.NewRequest(http.MethodPost,
		fmt.Sprintf("%s/v1/tenants/%s/catalogs/main/topk", base, tenant), strings.NewReader(body))
	if err != nil {
		return 0
	}
	if deadlineMs > 0 {
		req.Header.Set("X-Deadline-Ms", strconv.FormatInt(deadlineMs, 10))
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// phaseTally accumulates one phase's observations under a mutex; arrivals
// are concurrent goroutines, so per-client sharding buys nothing here.
type phaseTally struct {
	mu         sync.Mutex
	accepted   []int64 // latencies of 200s
	shed       int
	errors     int
	violations int
	raSeen     int
	raMissing  int
	ladder     map[string]int
}

// runPhase offers Poisson arrivals at ratePerSec for cfg.duration and
// classifies every completion.
func runPhase(client *http.Client, base string, cfg overloadConfig, label string, factor, ratePerSec float64) phaseReport {
	rng := rand.New(rand.NewSource(cfg.seed + int64(len(label))*104729))
	tally := &phaseTally{ladder: make(map[string]int)}
	violationBudget := time.Duration(cfg.deadlineMs+cfg.graceMs) * time.Millisecond

	offered := 0
	var wg sync.WaitGroup
	end := time.Now().Add(cfg.duration)
	for now := time.Now(); now.Before(end); now = time.Now() {
		offered++
		// Each arrival gets its own rng seed derived deterministically; the
		// shared rng stays on the arrival-timing goroutine.
		arrivalSeed := cfg.seed + int64(offered)*6364136223846793005
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			issueAndClassify(client, base, cfg, rand.New(rand.NewSource(seed)), tally, violationBudget)
		}(arrivalSeed)
		// Exponential inter-arrival time = Poisson arrivals.
		time.Sleep(time.Duration(rng.ExpFloat64() / ratePerSec * float64(time.Second)))
	}
	wg.Wait()

	tally.mu.Lock()
	defer tally.mu.Unlock()
	pr := phaseReport{
		Label:              label,
		Factor:             factor,
		OfferedPerSec:      ratePerSec,
		Offered:            offered,
		Accepted:           len(tally.accepted),
		Shed:               tally.shed,
		Errors:             tally.errors,
		DeadlineViolations: tally.violations,
		RetryAfterSeen:     tally.raSeen,
		RetryAfterMissing:  tally.raMissing,
		LadderMix:          tally.ladder,
	}
	if offered > 0 {
		pr.ShedFraction = float64(tally.shed) / float64(offered)
	}
	if n := len(tally.accepted); n > 0 {
		lat := tally.accepted
		er := summarize(lat, 0, 0, 0)
		pr.P50Ns, pr.P95Ns, pr.P99Ns, pr.MaxNs = er.P50Ns, er.P95Ns, er.P99Ns, er.MaxNs
	}
	return pr
}

// issueAndClassify sends one deadline-stamped top-k query and files the
// outcome: accepted (with latency, violation check, and ladder rung), shed
// (with Retry-After bookkeeping), or error.
func issueAndClassify(client *http.Client, base string, cfg overloadConfig, rng *rand.Rand, tally *phaseTally, violationBudget time.Duration) {
	tenant := fmt.Sprintf("t%d", rng.Intn(cfg.tenants))
	reqBody := fmt.Sprintf(`{"k": %d, "algo": "ta"}`, 1+rng.Intn(cfg.k))
	req, err := http.NewRequest(http.MethodPost,
		fmt.Sprintf("%s/v1/tenants/%s/catalogs/main/topk", base, tenant), strings.NewReader(reqBody))
	if err != nil {
		tally.mu.Lock()
		tally.errors++
		tally.mu.Unlock()
		return
	}
	if cfg.deadlineMs > 0 {
		req.Header.Set("X-Deadline-Ms", strconv.FormatInt(cfg.deadlineMs, 10))
	}

	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		tally.mu.Lock()
		tally.errors++
		tally.mu.Unlock()
		return
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)

	tally.mu.Lock()
	defer tally.mu.Unlock()
	switch resp.StatusCode {
	case http.StatusOK:
		tally.accepted = append(tally.accepted, elapsed.Nanoseconds())
		if cfg.deadlineMs > 0 && elapsed > violationBudget {
			tally.violations++
		}
		level := "exact"
		var env topkEnvelope
		if json.Unmarshal(body, &env) == nil && env.Ladder != nil && env.Ladder.Level != "" {
			level = env.Ladder.Level
		}
		tally.ladder[level]++
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		tally.shed++
		if resp.Header.Get("Retry-After") != "" {
			tally.raSeen++
		} else {
			tally.raMissing++
		}
	default:
		tally.errors++
	}
}
