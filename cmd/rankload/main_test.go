package main

import (
	"io"
	"math/rand"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	w, err := parseMix("topk=6,resilient=1,agg=2,submit=1,stats=1")
	if err != nil {
		t.Fatal(err)
	}
	if w["topk"] != 6 || w["agg"] != 2 || w["stats"] != 1 {
		t.Errorf("weights = %v", w)
	}
	for _, bad := range []string{"", "topk", "topk=x", "topk=-1", "nosuch=1", "topk=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
	// Zero-weight entries are fine as long as something has weight.
	if _, err := parseMix("topk=0,agg=3"); err != nil {
		t.Errorf("mixed zero weight rejected: %v", err)
	}
}

func TestMixPickRespectsWeights(t *testing.T) {
	w, err := parseMix("topk=3,stats=1")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	const draws = 4000
	for i := 0; i < draws; i++ {
		counts[w.pick(rng)]++
	}
	if counts["topk"]+counts["stats"] != draws {
		t.Fatalf("picked ops outside the mix: %v", counts)
	}
	// 3:1 weighting: topk should land near 75%.
	frac := float64(counts["topk"]) / draws
	if frac < 0.70 || frac > 0.80 {
		t.Errorf("topk fraction = %.3f, want ~0.75", frac)
	}
}

func TestQuantileNs(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.50, 50}, {0.95, 100}, {0.99, 100}, {0.10, 10}} {
		if got := quantileNs(sorted, tc.q); got != tc.want {
			t.Errorf("quantileNs(%.2f) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := quantileNs(nil, 0.5); got != 0 {
		t.Errorf("quantileNs(nil) = %d, want 0", got)
	}
}

func TestSummarize(t *testing.T) {
	lat := []int64{30, 10, 20, 40} // unsorted on purpose
	r := summarize(lat, 1, 2, 2*time.Second)
	if r.Count != 4 || r.Errors != 1 || r.Dropped != 2 {
		t.Errorf("tallies = %+v", r)
	}
	if r.MeanNs != 25 || r.MaxNs != 40 || r.P50Ns != 20 {
		t.Errorf("stats = %+v", r)
	}
	if r.PerSec != 2 {
		t.Errorf("per_sec = %g, want 2", r.PerSec)
	}
	empty := summarize(nil, 0, 3, time.Second)
	if empty.Count != 0 || empty.Dropped != 3 || empty.MeanNs != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestDomainNames(t *testing.T) {
	names := domainNames(3)
	if len(names) != 3 || names[0] != "e000" || names[2] != "e002" {
		t.Errorf("domainNames(3) = %v", names)
	}
}

func TestRunValidatesFlags(t *testing.T) {
	for _, args := range [][]string{
		{},                          // -addr missing
		{"-addr", "x", "-mix", "="}, // bad mix
		{"-addr", "x", "-clients", "0"},
		{"-addr", "x", "-n", "1"},
	} {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}
