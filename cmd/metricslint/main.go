// Command metricslint checks a Prometheus text exposition (format 0.0.4)
// with the repo's own linter — no external Prometheus dependency. It is the
// CI tripwire for the rankserve GET /metrics surface: malformed sample
// lines, duplicate series, invalid label names, non-monotone or
// +Inf-less histograms, and _count/_bucket disagreements all fail the
// build instead of failing the first real scraper pointed at the server.
//
// Input comes from a live server (-url), a file argument, or stdin:
//
//	metricslint -url http://localhost:8080/metrics
//	metricslint metrics.txt
//	curl -s localhost:8080/metrics | metricslint
//
// On a clean exposition it prints one summary line (series and family
// counts) and exits 0; otherwise it prints every problem with its line
// number and exits 1.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "metricslint:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("metricslint", flag.ContinueOnError)
	url := fs.String("url", "", "scrape this URL instead of reading a file or stdin")
	timeout := fs.Duration("timeout", 10*time.Second, "scrape timeout with -url")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var body []byte
	switch {
	case *url != "":
		if fs.NArg() > 0 {
			return fmt.Errorf("-url and a file argument are mutually exclusive")
		}
		client := &http.Client{Timeout: *timeout}
		resp, err := client.Get(*url)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("scraping %s: %s", *url, resp.Status)
		}
		body, err = io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
	case fs.NArg() == 1:
		var err error
		body, err = os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
	case fs.NArg() == 0:
		var err error
		body, err = io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("at most one file argument (got %d)", fs.NArg())
	}

	problems := telemetry.LintExposition(bytes.NewReader(body))
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(stdout, p.String())
		}
		return fmt.Errorf("%d problem(s)", len(problems))
	}
	exp, _ := telemetry.ParseExposition(bytes.NewReader(body))
	families := make(map[string]bool)
	for _, s := range exp.Samples {
		families[s.Name] = true
	}
	fmt.Fprintf(stdout, "ok: %d samples across %d metric names, %d TYPE declarations\n",
		len(exp.Samples), len(families), len(exp.Types))
	return nil
}
