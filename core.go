package rankties

import (
	"repro/internal/core"
)

// Comparison caches the pair classification of two partial rankings so all
// Kendall-family quantities derive from one O(n log n) pass.
type Comparison = core.Comparison

// ComparisonReport bundles the four paper metrics with the Theorem 7
// equivalence ratios for one pair of rankings.
type ComparisonReport = core.Report

// Compare builds a cached comparison of two partial rankings.
func Compare(a, b *PartialRanking) (*Comparison, error) { return core.Compare(a, b) }

// CompareWith is Compare on a caller-supplied workspace: batch loops reuse
// one warm Workspace across many comparisons and perform O(1) allocations
// per pair. The returned Comparison does not retain the workspace.
func CompareWith(ws *Workspace, a, b *PartialRanking) (*Comparison, error) {
	return core.CompareWith(ws, a, b)
}

// AggregationMethod selects an aggregation algorithm for AggregateWith.
type AggregationMethod = core.Method

// Aggregation methods.
const (
	MedianFullMethod      = core.MedianFullMethod
	OptimalPartialMethod  = core.OptimalPartialMethod
	BordaMethod           = core.BordaMethod
	MC4Method             = core.MC4Method
	FootruleOptimalMethod = core.FootruleOptimalMethod
	BestInputMethod       = core.BestInputMethod
)

// AggregationResult is one method's output ranking plus its summed
// objective under all four metrics.
type AggregationResult = core.AggregationResult

// AggregateWith runs the chosen aggregation method and evaluates it under
// all four metrics of Theorem 7.
func AggregateWith(rankings []*PartialRanking, method AggregationMethod) (*AggregationResult, error) {
	return core.Aggregate(rankings, method)
}

// CompareAggregators runs several aggregation methods (default: median,
// DP, Borda, MC4, best-input) and returns their objective reports.
func CompareAggregators(rankings []*PartialRanking, methods ...AggregationMethod) ([]*AggregationResult, error) {
	return core.CompareAll(rankings, methods...)
}
