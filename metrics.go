package rankties

import (
	"repro/internal/metrics"
)

// PairCounts classifies all element pairs with respect to two partial
// rankings (Section 3.1 / Proposition 6): concordant, discordant (U), tied
// only in one ranking (S and T), tied in both.
type PairCounts = metrics.PairCounts

// CountPairs classifies all pairs in O(n log n); it is the engine behind
// every Kendall-family metric.
func CountPairs(a, b *PartialRanking) (PairCounts, error) { return metrics.CountPairs(a, b) }

// Kendall returns the Kendall tau distance between two full rankings
// (Section 2.2). O(n log n); errors if an input has ties.
func Kendall(a, b *PartialRanking) (int64, error) { return metrics.Kendall(a, b) }

// Footrule returns the Spearman footrule distance between two full rankings
// (Section 2.2). Errors if an input has ties.
func Footrule(a, b *PartialRanking) (int64, error) { return metrics.Footrule(a, b) }

// KProf returns the Kendall profile metric Kprof = K^(1/2) between partial
// rankings (Section 3.1): discordant pairs count 1, pairs tied in exactly
// one ranking count 1/2. The value is an exact multiple of 1/2.
func KProf(a, b *PartialRanking) (float64, error) { return metrics.KProf(a, b) }

// FProf returns the footrule profile metric Fprof between partial rankings:
// the L1 distance between position vectors (Section 3.1).
func FProf(a, b *PartialRanking) (float64, error) { return metrics.FProf(a, b) }

// KWithPenalty returns the Kendall distance with penalty parameter
// p in [0, 1] (Section 3.1). Proposition 13: a metric for p >= 1/2, a near
// metric for 0 < p < 1/2, and not a distance measure at p = 0.
func KWithPenalty(a, b *PartialRanking, p float64) (float64, error) {
	return metrics.KWithPenalty(a, b, p)
}

// KHaus returns the Hausdorff-Kendall metric between partial rankings,
// computed with the Proposition 6 formula |U| + max(|S|, |T|).
func KHaus(a, b *PartialRanking) (int64, error) { return metrics.KHaus(a, b) }

// FHaus returns the Hausdorff-footrule metric between partial rankings,
// computed with the Theorem 5 refinement characterization.
func FHaus(a, b *PartialRanking) (int64, error) { return metrics.FHaus(a, b) }

// KAvg returns the average Kendall distance over all pairs of full
// refinements (Appendix A.3). It equals KProf exactly when no pair is tied
// in both rankings; on general partial rankings it is not a distance
// measure.
func KAvg(a, b *PartialRanking) (float64, error) { return metrics.KAvg(a, b) }

// FLocation returns the footrule distance with location parameter l between
// two top-k lists (Appendix A.3). At l = (n+k+1)/2 it coincides with FProf.
func FLocation(a, b *PartialRanking, l float64) (float64, error) {
	return metrics.FLocation(a, b, l)
}

// GoodmanKruskalGamma returns the Goodman-Kruskal gamma association in
// [-1, 1], or ErrGammaUndefined when no pair is untied in both rankings —
// the partiality the paper cites as its disadvantage.
func GoodmanKruskalGamma(a, b *PartialRanking) (float64, error) {
	return metrics.GoodmanKruskalGamma(a, b)
}

// ErrGammaUndefined reports a vanishing gamma denominator.
var ErrGammaUndefined = metrics.ErrGammaUndefined

// AllDistances bundles the four paper metrics for one pair of partial
// rankings.
type AllDistances = metrics.AllDistances

// Distances computes all four metrics of Theorem 7 in one
// pair-classification pass on a pooled workspace. The values always satisfy
// KProf <= FProf <= 2 KProf, KHaus <= FHaus <= 2 KHaus, and
// KProf <= KHaus <= 2 KProf.
func Distances(a, b *PartialRanking) (AllDistances, error) {
	return metrics.Distances(a, b)
}

// Workspace is reusable scratch state for the metric engines. A warm
// workspace computes CountPairs, the Kendall family, and the footrule
// family with zero heap allocations, so loops that evaluate many distances
// (ensemble scoring, aggregation objectives, nearest-neighbor sweeps) pay
// O(1) allocations per distance instead of O(n). Reuse one Workspace per
// goroutine — the zero value is ready — or rely on the package pool that
// backs the plain metric functions. See also CompareAll and
// DistanceMatrixWith, which manage per-worker workspaces for you.
type Workspace = metrics.Workspace

// NewWorkspace returns an empty workspace whose scratch buffers grow on
// first use and are retained across calls.
func NewWorkspace() *Workspace { return metrics.NewWorkspace() }

// KendallTauA returns Kendall's tau-a coefficient in [-1, 1] (ties dilute
// toward 0).
func KendallTauA(a, b *PartialRanking) (float64, error) { return metrics.KendallTauA(a, b) }

// KendallTauB returns Kendall's tie-corrected tau-b coefficient (Kendall
// 1945, the Related Work's normalized profile distance).
func KendallTauB(a, b *PartialRanking) (float64, error) { return metrics.KendallTauB(a, b) }

// SpearmanRho returns the Spearman correlation of the position vectors
// (mid-rank tie treatment).
func SpearmanRho(a, b *PartialRanking) (float64, error) { return metrics.SpearmanRho(a, b) }

// NormalizedKProf returns Kprof scaled into [0, 1] by n(n-1)/2.
func NormalizedKProf(a, b *PartialRanking) (float64, error) { return metrics.NormalizedKProf(a, b) }

// NormalizedFProf returns Fprof scaled into [0, 1] by floor(n^2/2).
func NormalizedFProf(a, b *PartialRanking) (float64, error) { return metrics.NormalizedFProf(a, b) }

// ErrCorrelationUndefined reports a vanishing correlation denominator.
var ErrCorrelationUndefined = metrics.ErrCorrelationUndefined

// ReflectOrder builds the reflected-duplicate full ranking sigma_pi of
// Appendix A.5.2 over the doubled domain; see NestFreeOrder.
func ReflectOrder(sigma, pi *PartialRanking) *PartialRanking {
	return metrics.ReflectOrder(sigma, pi)
}

// NestFreeOrder returns the tie-breaking order of Lemma 23, under which the
// reflected footrule equals 4*FProf exactly.
func NestFreeOrder(sigma, tau *PartialRanking) (*PartialRanking, error) {
	return metrics.NestFreeOrder(sigma, tau)
}

// RankingDistance is a distance function between partial rankings, as
// consumed by DistanceMatrix.
type RankingDistance = metrics.Distance

// RankingDistanceWS is a workspace-aware distance function, as consumed by
// DistanceMatrixWith. The adapters KProfWS, FProfWS, KHausWS, and FHausWS
// cover the four paper metrics; custom distances receive the worker's warm
// workspace and may use any of its kernels.
type RankingDistanceWS = metrics.DistanceWS

// Workspace-aware adapters for the four paper metrics. The Hausdorff pair
// return float64 for signature uniformity; the values are exact integers.
var (
	KProfWS RankingDistanceWS = metrics.KProfWS
	FProfWS RankingDistanceWS = metrics.FProfWS
	KHausWS RankingDistanceWS = metrics.KHausWS
	FHausWS RankingDistanceWS = metrics.FHausWS
)

// DistanceMatrix computes the symmetric pairwise distance matrix of an
// ensemble in parallel.
func DistanceMatrix(rankings []*PartialRanking, d RankingDistance) ([][]float64, error) {
	return metrics.DistanceMatrix(rankings, d)
}

// DistanceMatrixWith computes the symmetric pairwise distance matrix of an
// ensemble in parallel with one warm workspace per worker goroutine, so an
// m-ranking ensemble performs O(workers) scratch allocations instead of
// O(m^2). The first error stops the remaining cells from being computed.
func DistanceMatrixWith(rankings []*PartialRanking, d RankingDistanceWS) ([][]float64, error) {
	return metrics.DistanceMatrixWith(rankings, d)
}

// CompareAll computes the full symmetric matrix of AllDistances for an
// ensemble — all four paper metrics for every pair — in one batched
// parallel pass with per-worker workspace reuse. It is the ensemble entry
// point for middleware-scale workloads: m rankings cost one pair
// classification plus one witness kernel per pair and O(workers) scratch
// allocations total.
func CompareAll(rankings []*PartialRanking) ([][]AllDistances, error) {
	return metrics.CompareAll(rankings)
}

// KendallW returns Kendall's coefficient of concordance among the rankings,
// with the standard tie correction: 1 = complete agreement, near 0 = none.
func KendallW(rankings []*PartialRanking) (float64, error) {
	return metrics.KendallW(rankings)
}
