package rankties

import (
	"repro/internal/metrics"
)

// PairCounts classifies all element pairs with respect to two partial
// rankings (Section 3.1 / Proposition 6): concordant, discordant (U), tied
// only in one ranking (S and T), tied in both.
type PairCounts = metrics.PairCounts

// CountPairs classifies all pairs in O(n log n); it is the engine behind
// every Kendall-family metric.
func CountPairs(a, b *PartialRanking) (PairCounts, error) { return metrics.CountPairs(a, b) }

// Kendall returns the Kendall tau distance between two full rankings
// (Section 2.2). O(n log n); errors if an input has ties.
func Kendall(a, b *PartialRanking) (int64, error) { return metrics.Kendall(a, b) }

// Footrule returns the Spearman footrule distance between two full rankings
// (Section 2.2). Errors if an input has ties.
func Footrule(a, b *PartialRanking) (int64, error) { return metrics.Footrule(a, b) }

// KProf returns the Kendall profile metric Kprof = K^(1/2) between partial
// rankings (Section 3.1): discordant pairs count 1, pairs tied in exactly
// one ranking count 1/2. The value is an exact multiple of 1/2.
func KProf(a, b *PartialRanking) (float64, error) { return metrics.KProf(a, b) }

// FProf returns the footrule profile metric Fprof between partial rankings:
// the L1 distance between position vectors (Section 3.1).
func FProf(a, b *PartialRanking) (float64, error) { return metrics.FProf(a, b) }

// KWithPenalty returns the Kendall distance with penalty parameter
// p in [0, 1] (Section 3.1). Proposition 13: a metric for p >= 1/2, a near
// metric for 0 < p < 1/2, and not a distance measure at p = 0.
func KWithPenalty(a, b *PartialRanking, p float64) (float64, error) {
	return metrics.KWithPenalty(a, b, p)
}

// KHaus returns the Hausdorff-Kendall metric between partial rankings,
// computed with the Proposition 6 formula |U| + max(|S|, |T|).
func KHaus(a, b *PartialRanking) (int64, error) { return metrics.KHaus(a, b) }

// FHaus returns the Hausdorff-footrule metric between partial rankings,
// computed with the Theorem 5 refinement characterization.
func FHaus(a, b *PartialRanking) (int64, error) { return metrics.FHaus(a, b) }

// KAvg returns the average Kendall distance over all pairs of full
// refinements (Appendix A.3). It equals KProf exactly when no pair is tied
// in both rankings; on general partial rankings it is not a distance
// measure.
func KAvg(a, b *PartialRanking) (float64, error) { return metrics.KAvg(a, b) }

// FLocation returns the footrule distance with location parameter l between
// two top-k lists (Appendix A.3). At l = (n+k+1)/2 it coincides with FProf.
func FLocation(a, b *PartialRanking, l float64) (float64, error) {
	return metrics.FLocation(a, b, l)
}

// GoodmanKruskalGamma returns the Goodman-Kruskal gamma association in
// [-1, 1], or ErrGammaUndefined when no pair is untied in both rankings —
// the partiality the paper cites as its disadvantage.
func GoodmanKruskalGamma(a, b *PartialRanking) (float64, error) {
	return metrics.GoodmanKruskalGamma(a, b)
}

// ErrGammaUndefined reports a vanishing gamma denominator.
var ErrGammaUndefined = metrics.ErrGammaUndefined

// AllDistances bundles the four paper metrics for one pair of partial
// rankings.
type AllDistances struct {
	KProf float64
	FProf float64
	KHaus int64
	FHaus int64
}

// Distances computes all four metrics of Theorem 7 in one pass-friendly
// call. The values always satisfy KProf <= FProf <= 2 KProf,
// KHaus <= FHaus <= 2 KHaus, and KProf <= KHaus <= 2 KProf.
func Distances(a, b *PartialRanking) (AllDistances, error) {
	var d AllDistances
	var err error
	if d.KProf, err = metrics.KProf(a, b); err != nil {
		return d, err
	}
	if d.FProf, err = metrics.FProf(a, b); err != nil {
		return d, err
	}
	if d.KHaus, err = metrics.KHaus(a, b); err != nil {
		return d, err
	}
	if d.FHaus, err = metrics.FHaus(a, b); err != nil {
		return d, err
	}
	return d, nil
}

// KendallTauA returns Kendall's tau-a coefficient in [-1, 1] (ties dilute
// toward 0).
func KendallTauA(a, b *PartialRanking) (float64, error) { return metrics.KendallTauA(a, b) }

// KendallTauB returns Kendall's tie-corrected tau-b coefficient (Kendall
// 1945, the Related Work's normalized profile distance).
func KendallTauB(a, b *PartialRanking) (float64, error) { return metrics.KendallTauB(a, b) }

// SpearmanRho returns the Spearman correlation of the position vectors
// (mid-rank tie treatment).
func SpearmanRho(a, b *PartialRanking) (float64, error) { return metrics.SpearmanRho(a, b) }

// NormalizedKProf returns Kprof scaled into [0, 1] by n(n-1)/2.
func NormalizedKProf(a, b *PartialRanking) (float64, error) { return metrics.NormalizedKProf(a, b) }

// NormalizedFProf returns Fprof scaled into [0, 1] by floor(n^2/2).
func NormalizedFProf(a, b *PartialRanking) (float64, error) { return metrics.NormalizedFProf(a, b) }

// ErrCorrelationUndefined reports a vanishing correlation denominator.
var ErrCorrelationUndefined = metrics.ErrCorrelationUndefined

// ReflectOrder builds the reflected-duplicate full ranking sigma_pi of
// Appendix A.5.2 over the doubled domain; see NestFreeOrder.
func ReflectOrder(sigma, pi *PartialRanking) *PartialRanking {
	return metrics.ReflectOrder(sigma, pi)
}

// NestFreeOrder returns the tie-breaking order of Lemma 23, under which the
// reflected footrule equals 4*FProf exactly.
func NestFreeOrder(sigma, tau *PartialRanking) (*PartialRanking, error) {
	return metrics.NestFreeOrder(sigma, tau)
}

// RankingDistance is a distance function between partial rankings, as
// consumed by DistanceMatrix.
type RankingDistance = metrics.Distance

// DistanceMatrix computes the symmetric pairwise distance matrix of an
// ensemble in parallel.
func DistanceMatrix(rankings []*PartialRanking, d RankingDistance) ([][]float64, error) {
	return metrics.DistanceMatrix(rankings, d)
}

// KendallW returns Kendall's coefficient of concordance among the rankings,
// with the standard tie correction: 1 = complete agreement, near 0 = none.
func KendallW(rankings []*PartialRanking) (float64, error) {
	return metrics.KendallW(rankings)
}
