package rankties

import (
	"strings"
	"testing"
)

// The facade must expose a coherent end-to-end workflow; this test walks the
// README quickstart.
func TestFacadeEndToEnd(t *testing.T) {
	// Three judges rank four items; judge 3 has ties.
	a := MustFromOrder([]int{0, 1, 2, 3})
	b := MustFromOrder([]int{1, 0, 2, 3})
	c := MustFromBuckets(4, [][]int{{0, 1}, {2, 3}})
	in := []*PartialRanking{a, b, c}

	d, err := Distances(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if !(d.KProf <= d.FProf && d.FProf <= 2*d.KProf) {
		t.Errorf("Eq. 5 violated by facade: %+v", d)
	}
	if !(float64(d.KHaus) <= float64(d.FHaus) && d.FHaus <= 2*d.KHaus) {
		t.Errorf("Eq. 4 violated by facade: %+v", d)
	}

	full, err := MedianFull(in)
	if err != nil {
		t.Fatal(err)
	}
	if !full.IsFull() {
		t.Error("MedianFull returned ties")
	}
	top, err := MedianTopK(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := MedRank(in, 2, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if !stream.TopK.Equal(top) {
		t.Errorf("streaming and offline top-k disagree: %v vs %v", stream.TopK, top)
	}
	if stream.Stats.Total > FullScanCost(in).Total {
		t.Error("MedRank read more than a full scan")
	}

	dp, err := OptimalPartialAggregate(in)
	if err != nil {
		t.Fatal(err)
	}
	objDP, err := SumL1Ranking(dp, in)
	if err != nil {
		t.Fatal(err)
	}
	objFull, err := SumL1Ranking(full, in)
	if err != nil {
		t.Fatal(err)
	}
	if objDP > objFull+1e-9 {
		t.Errorf("Theorem 10 aggregate (%v) worse than median refinement (%v)", objDP, objFull)
	}
}

func TestFacadeCodec(t *testing.T) {
	rs, dom, err := ParseLines(strings.NewReader("a b | c\nc | a b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || dom.Size() != 3 {
		t.Fatalf("parsed %d rankings, %d names", len(rs), dom.Size())
	}
	var sb strings.Builder
	if err := WriteLines(&sb, dom, rs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "a b | c") {
		t.Errorf("round trip lost formatting: %q", sb.String())
	}
}

func TestFacadeDB(t *testing.T) {
	tbl := NewTable("flights")
	if err := tbl.AddColumn("price", FloatCol); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddColumn("stops", IntCol); err != nil {
		t.Fatal(err)
	}
	for _, f := range []struct {
		key   string
		price float64
		stops int
	}{
		{"UA100", 320, 0}, {"AA7", 250, 1}, {"DL9", 250, 2}, {"WN4", 199, 1},
	} {
		if err := tbl.Insert(f.key, Row{"price": f.price, "stops": f.stops}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := tbl.TopK(Query{
		Preferences: []Preference{
			{Column: "price", Direction: Ascending},
			{Column: "stops", Direction: Ascending},
		},
		K: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With m=2 the lower median is the better of the two positions: UA100
	// (best on stops) and WN4 (best on price) tie at median 1; the tie
	// breaks by insertion order, so UA100 wins.
	if len(res.Keys) != 1 || res.Keys[0] != "UA100" {
		t.Errorf("winner = %v, want UA100", res.Keys)
	}
}

func TestFacadeAllMetricsFunctions(t *testing.T) {
	a := MustFromOrder([]int{0, 1, 2})
	b := MustFromBuckets(3, [][]int{{0, 1}, {2}})
	if _, err := Kendall(a, a); err != nil {
		t.Error(err)
	}
	if _, err := Footrule(a, a); err != nil {
		t.Error(err)
	}
	if _, err := KWithPenalty(a, b, 0.5); err != nil {
		t.Error(err)
	}
	if _, err := KAvg(a, b); err != nil {
		t.Error(err)
	}
	if _, err := CountPairs(a, b); err != nil {
		t.Error(err)
	}
	topA, _ := TopKList(3, 1, []int{2})
	topB, _ := TopKList(3, 1, []int{1})
	if _, err := FLocation(topA, topB, 2.5); err != nil {
		t.Error(err)
	}
	if _, err := GoodmanKruskalGamma(a, b); err != nil {
		t.Error(err)
	}
	if g, err := MedianScores([]*PartialRanking{a, b}, MeanMedian); err != nil || len(g) != 3 {
		t.Errorf("MedianScores: %v %v", g, err)
	}
	if _, err := Borda([]*PartialRanking{a, b}); err != nil {
		t.Error(err)
	}
	if _, err := MarkovChain([]*PartialRanking{a, b}, MC4, MarkovChainOptions{}); err != nil {
		t.Error(err)
	}
	if _, err := LocalKemenize(a, []*PartialRanking{a, b}); err != nil {
		t.Error(err)
	}
	if _, _, err := FootruleOptimalFull([]*PartialRanking{a, b}); err != nil {
		t.Error(err)
	}
	if res, err := OptimalPartial([]float64{1, 1, 3}); err != nil || res.Ranking.N() != 3 {
		t.Errorf("OptimalPartial: %v", err)
	}
	if res, err := OptimalPartialFigure1([]float64{1, 1, 3}); err != nil || res.Ranking.N() != 3 {
		t.Errorf("OptimalPartialFigure1: %v", err)
	}
	count := 0
	ForEachPartialRanking(3, func(*PartialRanking) bool { count++; return true })
	if count != 13 {
		t.Errorf("ForEachPartialRanking visited %d, want 13", count)
	}
	if _, err := ConsistentOfType([]float64{3, 1, 2}, []int{2, 1}); err != nil {
		t.Error(err)
	}
	if lb := CertificateLowerBound([]*PartialRanking{a, b}, []int{0}); lb < 1 {
		t.Errorf("CertificateLowerBound = %d", lb)
	}
	if s := FromScores([]float64{1, 1, 2}); s.NumBuckets() != 2 {
		t.Errorf("FromScores buckets = %d", s.NumBuckets())
	}
	dom, err := DomainOf("x", "y")
	if err != nil || dom.Size() != 2 {
		t.Errorf("DomainOf: %v", err)
	}
	if pr, err := ParseText(NewDomain(), "x | y"); err != nil || pr.N() != 2 {
		t.Errorf("ParseText: %v", err)
	}
	if _, err := FromBuckets(2, [][]int{{0}, {1}}); err != nil {
		t.Error(err)
	}
	if _, err := FromOrder([]int{0, 1}); err != nil {
		t.Error(err)
	}
}

func TestFacadeExtensions(t *testing.T) {
	a := MustFromOrder([]int{0, 1, 2, 3})
	b := MustFromBuckets(4, [][]int{{0, 1}, {2, 3}})
	if v, err := KendallTauB(a, b); err != nil || v <= 0 {
		t.Errorf("KendallTauB = %v, %v", v, err)
	}
	if _, err := KendallTauA(a, b); err != nil {
		t.Error(err)
	}
	if _, err := SpearmanRho(a, b); err != nil {
		t.Error(err)
	}
	if v, err := NormalizedKProf(a, b); err != nil || v < 0 || v > 1 {
		t.Errorf("NormalizedKProf = %v, %v", v, err)
	}
	if v, err := NormalizedFProf(a, b); err != nil || v < 0 || v > 1 {
		t.Errorf("NormalizedFProf = %v, %v", v, err)
	}
	pi, err := NestFreeOrder(a, b)
	if err != nil {
		t.Fatal(err)
	}
	refl := ReflectOrder(b, pi)
	if refl.N() != 8 || !refl.IsFull() {
		t.Errorf("ReflectOrder shape wrong: %v", refl)
	}
	in := []*PartialRanking{a, b}
	topK, witness, err := StrongMedianTopK(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !topK.ConsistentWith(witness.Positions()) {
		t.Error("strong witness inconsistent")
	}
	if c := OrderPreservingMatchingCost([]float64{1, 3}, []float64{2, 2}); c != 2 {
		t.Errorf("OrderPreservingMatchingCost = %v, want 2", c)
	}
	cmp, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	rep := cmp.Report()
	if rep.KProf <= 0 || rep.FprofOverKprof < 1 || rep.FprofOverKprof > 2 {
		t.Errorf("ComparisonReport wrong: %+v", rep)
	}
	results, err := CompareAggregators(in, MedianFullMethod, BordaMethod)
	if err != nil || len(results) != 2 {
		t.Errorf("CompareAggregators: %v, %v", results, err)
	}
	res, err := AggregateWith(in, MC4Method)
	if err != nil || res.Ranking.N() != 4 {
		t.Errorf("AggregateWith: %v", err)
	}
}

func TestFacadeDBFiltered(t *testing.T) {
	tbl, err := LoadCSV("flights", strings.NewReader(
		"name,price,stops\nUA1,300,0\nAA2,250,1\nWN3,200,2\n"),
		"name", map[string]ColumnType{"price": FloatCol, "stops": IntCol})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.TopKWhere(FilteredQuery{
		Conditions:  []Condition{{Column: "stops", Op: Le, Value: 1}},
		Preferences: []Preference{{Column: "price", Direction: Ascending}},
		K:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) != 1 || res.Keys[0] != "AA2" {
		t.Errorf("filtered winner = %v, want AA2", res.Keys)
	}
}

func TestFacadeFKS(t *testing.T) {
	a, err := NewFKSList(10, 20, 30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFKSList(20, 40)
	if err != nil {
		t.Fatal(err)
	}
	d, err := FKSKPenalty(a, b, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb, dom, err := FKSEmbed(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(dom) != 4 || pa.N() != 4 || pb.N() != 4 {
		t.Fatalf("embed shape wrong: %v %d %d", dom, pa.N(), pb.N())
	}
	ours, err := KWithPenalty(pa, pb, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d != ours {
		t.Errorf("A.3 equality violated via facade: %v vs %v", d, ours)
	}
	if _, err := FKSFLocation(a, b, 4); err != nil {
		t.Error(err)
	}
}

func TestFacadeKemenyAndCondorcet(t *testing.T) {
	in := []*PartialRanking{
		MustFromOrder([]int{0, 1, 2}),
		MustFromOrder([]int{0, 2, 1}),
		MustFromBuckets(3, [][]int{{2}, {0, 1}}),
	}
	opt, obj, err := KemenyOptimalDP(in)
	if err != nil {
		t.Fatal(err)
	}
	if opt.N() != 3 || obj < 0 {
		t.Errorf("KemenyOptimalDP: %v %v", opt, obj)
	}
	w, ok, err := CondorcetWinner(in)
	if err != nil {
		t.Fatal(err)
	}
	if ok && opt.Order()[0] != w {
		t.Errorf("Kemeny optimum ignores Condorcet winner %d: %v", w, opt)
	}
	if _, err := MajorityMargins(in); err != nil {
		t.Error(err)
	}
	if _, _, err := CondorcetLoser(in); err != nil {
		t.Error(err)
	}
	if _, err := MedianPartialOfType(in, []int{2, 1}); err != nil {
		t.Error(err)
	}
	if _, err := MedianInduced(in); err != nil {
		t.Error(err)
	}
}

// The batched ensemble entry point must agree with the single-pair facade
// calls, and an explicitly reused Workspace must match the pooled paths.
func TestFacadeCompareAllAndWorkspace(t *testing.T) {
	a := MustFromOrder([]int{0, 1, 2, 3, 4})
	b := MustFromBuckets(5, [][]int{{1, 3}, {0}, {2, 4}})
	c := MustFromBuckets(5, [][]int{{4}, {0, 1, 2, 3}})
	in := []*PartialRanking{a, b, c}

	mat, err := CompareAll(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		for j := range in {
			want, err := Distances(in[i], in[j])
			if err != nil {
				t.Fatal(err)
			}
			if mat[i][j] != want {
				t.Errorf("CompareAll[%d][%d] = %+v, want %+v", i, j, mat[i][j], want)
			}
		}
	}

	ws := NewWorkspace()
	for i := range in {
		for j := range in {
			got, err := ws.Distances(in[i], in[j])
			if err != nil {
				t.Fatal(err)
			}
			if got != mat[i][j] {
				t.Errorf("ws.Distances[%d][%d] = %+v, want %+v", i, j, got, mat[i][j])
			}
		}
	}

	// Workspace-aware distance matrix agrees with the plain one.
	plain, err := DistanceMatrix(in, KProf)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := DistanceMatrixWith(in, KProfWS)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		for j := range plain[i] {
			if plain[i][j] != fast[i][j] {
				t.Errorf("matrix mismatch at [%d][%d]: %v vs %v", i, j, plain[i][j], fast[i][j])
			}
		}
	}

	// CompareWith on a reused workspace matches Compare.
	cmpPlain, err := Compare(b, c)
	if err != nil {
		t.Fatal(err)
	}
	cmpWS, err := CompareWith(ws, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if cmpPlain.Report() != cmpWS.Report() {
		t.Errorf("CompareWith report %+v, Compare report %+v", cmpWS.Report(), cmpPlain.Report())
	}
}
